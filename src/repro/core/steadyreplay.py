"""Exact steady-state replay telescoping for the array engine.

The simulator is deterministic and autonomous between ``step`` calls:
once the machine state at cycle ``t + P`` equals the state at ``t`` in
every respect that can influence the future *relative to the current
cycle*, the whole future repeats with period ``P`` -- the same slots
decode the same groups, the same misses queue at the same offsets, the
same windows trigger the same balancer actions.  Replaying those
periods one cycle at a time only re-derives known numbers, so the
array engine telescopes them: detect a candidate period from the
repetition-completion pattern, verify it by densely simulating one
more period and comparing an exhaustive relative-state signature, then
jump whole periods at once by adding the verified per-period counter
deltas and time-shifting every future-dated record.

Exactness contract (enforced by the engine differential tests): a jump
of ``k`` periods leaves the core in a state *bit-identical* -- every
counter, every repetition record, every cache line, every queued miss
-- to the state dense simulation would have reached, for every
observable the simulator exposes.  There is no extrapolation slack:
the signature covers the complete mutable state expressed relative to
``now`` (trace positions, scoreboards, in-flight groups, unit-pool
reservations, LMQ intervals, DRAM bus slots, cache/TLB tag order and
recency order, branch-predictor tables, balancer phase), so signature
equality at ``t`` and ``t + P`` implies the two states are related by
a pure time translation, and the jump applies exactly that
translation.

Three state classes get three treatments:

- *monotone counters* (retired, slot accounting, hit/miss statistics,
  ...) advance by ``k`` times their verified per-period delta;
- *future-dated records* (group completions, scoreboard entries,
  unit-pool reservations, LMQ/DRAM intervals, the balancer window
  boundary) shift by ``k * P``;
- *recency state* (cache/TLB stamps) is left untouched: lookups only
  compare stamps within a set, post-jump stamps exceed all resident
  ones just as they would after dense replay, and the signature pins
  the resident relative order, so every future hit/miss/eviction
  decision is unchanged.

Instrumented and chip-attached runs telescope too, under three extra
fences (dense fallback remains for the tracer and repetition gates,
whose per-cycle observations no jump can reproduce):

- *periodic hooks* fire at exact cycles because dense spans already
  fold ``_next_hook`` into their deadline and :meth:`SteadyReplay.run`
  clamps every jump at the next pending fire time -- a jump never
  crosses a hook firing, and a due hook is discharged by one dense
  cycle.  Hooks themselves are free to perturb the machine: a hook
  registered as an *observer* (PMU samplers, governors, stock-kernel
  timer ticks) promises its mutations, if any, land in the priority
  interface or the prefetch knobs, both of which already void a
  verified regime (arbiter identity, ``knob_gen``); any non-observer
  hook firing bumps ``SMTCore._hook_mut_gen``, which voids the regime
  the same way.
- *chip-attached cores* (``hierarchy.chip_port`` set) only earn a
  verified regime when the verification period made **zero** shared-
  bus grants: the bus is stateless occupancy booking, so a core whose
  period never touches it is autonomous for as long as the regime
  holds, and jumps are sound by induction.  A period that does touch
  the bus fails verification and backs off like any signature
  mismatch.
- *jump length* is clamped to the largest ``k`` whose landing
  repetition still decodes the verified trace object (halving on
  mismatch), so a bounded source ending mid-horizon degrades to
  shorter jumps before falling back to dense.

A failed verification just resumes dense simulation -- detection is
pure overhead bounded by one signature comparison per retry, and the
densely simulated verification cycles count toward the run anyway.
"""

from __future__ import annotations

from math import gcd

#: Monotone per-thread counters extrapolated across jumped periods.
#: ``rep_index`` and the window snapshots ride along: their per-period
#: deltas are verified like any counter and their relations to the
#: phase state (snapshot-vs-current differences, in-flight group
#: repetition tags) are pinned by the signature.
_THREAD_COUNTERS = (
    "owned_slots", "wasted_slots", "slots_lost_gct", "slots_lost_stall",
    "slots_lost_balancer", "slots_lost_throttle", "slots_lost_other",
    "decoded", "retired", "groups_dispatched", "mispredicts", "flushes",
    "flushed_instructions", "operand_wait_cycles", "fu_wait_cycles",
    "priority_changes", "rep_index", "window_l2_misses", "window_retired",
)

_BALANCER_STATS = ("stall_events", "stall_cycles", "flush_events",
                   "flushed_groups", "throttle_windows")

#: Longest repetition-delta block searched for a repeating pattern.
#: Joint SMT regimes cycle through many repetition lengths before the
#: pair realigns (cpu_int + ldint_l2 repeats every 49 primary
#: repetitions: 94,848 cycles, exactly 304 secondary repetitions).
_MAX_BLOCK = 64

#: Candidate periods above this are not worth verifying: the horizon
#: needed to amortize them exceeds any practical measurement.
_MAX_PERIOD = 1 << 22

#: Dense cycles between detection probes while no candidate exists.
_PROBE = 4096

_IDLE, _VERIFYING, _VERIFIED = 0, 1, 2


def _counter_slots(core):
    """Every monotone counter as a (container, key) slot list.

    ``key`` is an attribute name or a list index; the same slot list
    drives snapshotting, delta computation and the jump update, so the
    three can never disagree about coverage.
    """
    slots = []
    for th in core._threads:
        if th is not None:
            slots += [(th, f) for f in _THREAD_COUNTERS]
    for pool in core.fus.pools():
        slots += [(pool, "issues"), (pool, "total_wait"),
                  (pool.thread_issues, 0), (pool.thread_issues, 1)]
    hier = core.hierarchy
    for counts in hier.level_counts.values():
        slots += [(counts, 0), (counts, 1)]
    slots += [(hier.store_counts, 0), (hier.store_counts, 1)]
    lmq = hier.lmq
    slots += [(lmq, "acquisitions"), (lmq, "total_wait_cycles"),
              (lmq.thread_acquisitions, 0), (lmq.thread_acquisitions, 1),
              (lmq.thread_wait_cycles, 0), (lmq.thread_wait_cycles, 1)]
    dram = hier.dram
    slots += [(dram, "accesses"), (dram, "total_queue_cycles"),
              (dram.thread_accesses, 0), (dram.thread_accesses, 1),
              (dram.thread_queue_cycles, 0), (dram.thread_queue_cycles, 1)]
    for unit in (hier.tlb, hier.l1d, hier.l2, hier.l3):
        st = unit.stats
        slots += [(st, "hits"), (st, "misses"),
                  (st.thread_hits, 0), (st.thread_hits, 1),
                  (st.thread_misses, 0), (st.thread_misses, 1)]
    bht = core.bht
    slots += [(bht, "predictions"), (bht, "mispredictions"),
              (bht.thread_predictions, 0), (bht.thread_predictions, 1),
              (bht.thread_mispredictions, 0), (bht.thread_mispredictions, 1)]
    for name in _BALANCER_STATS:
        pair = getattr(core.balancer.stats, name)
        slots += [(pair, 0), (pair, 1)]
    pstats = hier.prefetcher.stats
    for pair in (pstats.allocs, pstats.issues, pstats.hits,
                 pstats.useless, pstats.late):
        slots += [(pair, 0), (pair, 1)]
    return slots


def _read(slots):
    return [getattr(c, k) if type(k) is str else c[k] for c, k in slots]


def _apply(slots, deltas, k):
    for (c, key), d in zip(slots, deltas):
        if d:
            if type(key) is str:
                setattr(c, key, getattr(c, key) + k * d)
            else:
                c[key] += k * d


def _recency_sig(sets):
    """Canonical (tags, recency order) form of one cache/TLB level.

    Lookups compare stamps only within a set, so two states behave
    identically iff each set holds the same tags in the same dict
    order with the same stamp ranking -- eviction picks the minimum
    stamp with dict-order tie-break, which this form pins exactly
    while staying invariant to the absolute stamp values.
    """
    out = []
    for s in sets:
        if s:
            vals = list(s.values())
            out.append((tuple(s), tuple(sorted(range(len(vals)),
                                               key=vals.__getitem__))))
        else:
            out.append(())
    return tuple(out)


def _signature(core, tab_len, thr_interval, bal_on):
    """Complete mutable state relative to the current cycle.

    Equality of two signatures taken ``P`` cycles apart proves the
    states are time-translates of each other: every field is either
    phase state expressed relative to ``now`` (with past timestamps
    clamped -- anything at or before ``now`` acts as "ready") or a
    difference of two monotone counters whose relation feeds future
    decisions (balancer window snapshots versus current values).
    """
    now = core._cycle
    hier = core.hierarchy
    bal = core.balancer
    parts = [now % tab_len,
             core.priorities,
             core.honor_priority_nops,
             core._gct_used,
             bal.next_window - now if bal_on else -1]
    for tid, th in enumerate(core._threads):
        if th is None:
            parts.append(None)
            continue
        rep_obj = getattr(th, "_rep_obj", None)
        parts.append((
            th.pos, th.finished, th.gated, th.balancer_stalled,
            th.throttled, th.gct_held,
            max(th.stall_until - now, 0),
            0 if rep_obj is None else id(rep_obj),
            th.owned_slots % thr_interval if bal_on else -1,
            hier.l2_miss_count(tid) - th.window_l2_misses if bal_on else -1,
            th.retired - th.window_retired if bal_on else -1,
            tuple(r - now if r > now else 0 for r in th.reg_ready),
            tuple((g[0] - now, g[1], g[2], g[3], g[4] - th.rep_index)
                  for g in th.inflight),
        ))
    for pool in core.fus.pools():
        parts.append(tuple(sorted(
            (t - now, v) for t, v in pool._occupied.items() if t >= now)))
    parts.append(tuple((e - now, s - now)
                       for e, s in hier.lmq._intervals))
    dram = hier.dram
    horizon = now - dram.config.dram_bus_gap
    parts.append(tuple(s - now for s in dram._starts if s > horizon))
    pf = hier.prefetcher
    # Prefetcher phase state.  Stream entries and miss lines are
    # absolute but periodic (looping working sets revisit the same
    # lines); in-flight fill ready times are future-dated and clamped
    # like scoreboard entries -- any past ready behaves as "arrived"
    # (a consuming demand always completes after ``now``), and the
    # tuple order pins the insertion order the capacity eviction
    # walks.  The live knobs ride along even though every knob write
    # also voids the regime through ``knob_gen``.
    parts.append((tuple(pf.on), tuple(pf.depth), tuple(pf.degree)))
    for tid in (0, 1):
        parts.append((
            tuple(tuple(e) for e in pf._streams[tid]),
            tuple((ln, r - now if r > now else 0)
                  for ln, r in pf._inflight[tid].items()),
            pf._prev[tid],
        ))
    parts.append(_recency_sig(hier.tlb._sets))
    parts.append(_recency_sig(hier.l1d._sets))
    parts.append(_recency_sig(hier.l2._sets))
    parts.append(_recency_sig(hier.l3._sets))
    parts.append(bytes(core.bht._table))
    return parts


def _block(ends):
    """Smallest repeating tail block of the repetition-length series.

    Returns ``(block_reps, block_cycles)`` when the last ``2 * b``
    repetition deltas form two identical blocks of ``b``, else
    ``(0, 0)``.  One block is the thread's contribution to the period.
    """
    n = len(ends)
    if n < 4:
        return 0, 0
    tail = ends[-(3 * _MAX_BLOCK + 1):]
    d = [b - a for a, b in zip(tail, tail[1:])]
    m = len(d)
    for b in range(1, _MAX_BLOCK + 1):
        # Three consecutive occurrences: two would accept transient
        # coincidences whose inflated alignment lcm then wastes the
        # whole verification budget on a hopeless candidate.
        if (m >= 3 * b and d[-b:] == d[-2 * b:-b]
                and d[-2 * b:-b] == d[-3 * b:-2 * b]):
            total = sum(d[-b:])
            return (b, total) if total > 0 else (0, 0)
    return 0, 0


def _cycle_index(rel, phase):
    """Last index of ``phase`` in one period's event-phase pattern."""
    for i in range(len(rel) - 1, -1, -1):
        if rel[i] == phase:
            return i
    return -1


class SteadyReplay:
    """Per-load telescoping driver owned by one ``ArraySMTCore``.

    The engine's ``step`` hands uninstrumented runs to :meth:`run`,
    which advances the core to the target cycle through a mix of dense
    ``_step_dense`` spans and verified whole-period jumps.  All state
    is per-workload; ``SMTCore.load`` builds a fresh instance.
    """

    __slots__ = ("core", "disabled", "state", "period", "anchor", "arb",
                 "pf_gen", "hook_gen", "port_base", "port_quiet",
                 "slots", "sig1", "snap", "lens", "base",
                 "deltas", "suffix", "tab_len", "thr_interval", "bal_on",
                 "jumps", "jumped_cycles", "_retry_at", "_fails")

    def __init__(self, core):
        self.core = core
        self.disabled = False
        self.state = _IDLE
        self.period = 0
        self.anchor = 0
        self.arb = None
        self.pf_gen = -1
        self.hook_gen = -1
        # Chip-port grant counts at _begin; a verified regime under a
        # chip port requires a zero delta (bus-quiet period).
        self.port_base = None
        self.port_quiet = False
        self.slots = _counter_slots(core)
        self.sig1 = None
        self.snap = None
        self.lens = None
        self.base = None
        self.deltas = None
        self.suffix = None
        self.tab_len = 1
        self.thr_interval = 1
        t0, t1 = core._threads
        bal_cfg = core.balancer.config
        self.bal_on = (bal_cfg.enabled
                       and t0 is not None and t1 is not None)
        self.jumps = 0
        self.jumped_cycles = 0
        self._retry_at = 0
        self._fails = 0

    # -- driver ---------------------------------------------------------

    def run(self, end: int) -> None:
        """Advance the core from its current cycle to ``end``."""
        core = self.core
        dense = core._step_dense
        while core._cycle < end:
            now = core._cycle
            if self.state != _IDLE and (
                    core._arbiter is not self.arb
                    or core.hierarchy.prefetcher.knob_gen != self.pf_gen
                    or core._hook_mut_gen != self.hook_gen):
                # Priorities changed (sysfs write, priority nop), a
                # prefetch knob was retuned, or a non-observer hook
                # fired: the behaviour the regime was verified against
                # is gone, so the regime is void.
                self.state = _IDLE
                self.sig1 = self.deltas = self.suffix = None
                self.port_quiet = False
                continue
            if self.disabled:
                dense(end - now)
                return
            if self.state == _VERIFIED:
                # Never jump across a pending hook: dense spans fire
                # hooks at their exact cycle (the dense loop folds
                # _next_hook into its deadline), so clamping the
                # telescoped horizon at the next fire time preserves
                # exact firing.  A hook due *now* is discharged by one
                # dense cycle (whose hook block also reloads state and
                # revalidates dispatch tables); if it retuned anything,
                # the void check above catches it next iteration.
                nh = core._next_hook
                if 0 <= nh <= now:
                    dense(1)
                    continue
                limit = end if nh < 0 or nh >= end else nh
                k = (limit - now) // self.period
                if k > 0 and self._jump(k):
                    continue
                dense(limit - now)
            elif self.state == _VERIFYING:
                target = self.anchor + self.period
                dense(min(end, target) - now)
                if core._cycle >= target:
                    self._check()
            else:
                p = self._detect()
                if p:
                    self._begin(p)
                else:
                    dense(min(end - now, _PROBE))

    # -- detection ------------------------------------------------------

    def _lead(self) -> int:
        return sum(len(th.rep_end_times) for th in self.core._threads
                   if th is not None)

    def _detect(self) -> int:
        core = self.core
        tab_len = core._array_locals()[4]
        self.tab_len = tab_len
        period = tab_len
        live = 0
        for th in core._threads:
            if th is None or th.finished:
                continue
            live += 1
            _, cycles = _block(th.rep_end_times)
            if not cycles:
                return 0
            period = period * cycles // gcd(period, cycles)
        if not live or self._lead() < self._retry_at:
            return 0
        if self.bal_on:
            # Window sampling must land at the same period phase.
            w = core.balancer.config.window_cycles
            period = period * w // gcd(period, w)
        if period > _MAX_PERIOD:
            return 0
        return period

    def _begin(self, period: int) -> None:
        core = self.core
        self.period = period
        self.anchor = core._cycle
        self.arb = core._arbiter
        self.pf_gen = core.hierarchy.prefetcher.knob_gen
        self.hook_gen = core._hook_mut_gen
        self.port_base = self._port_grants()
        self.thr_interval = core.balancer.config.throttle_interval
        self.sig1 = _signature(core, self.tab_len, self.thr_interval,
                               self.bal_on)
        self.snap = _read(self.slots)
        self.lens = [(len(th.rep_end_times), len(th.rep_start_times))
                     if th is not None else None
                     for th in core._threads]
        self.base = [(th.retired, th.rep_index)
                     if th is not None else None
                     for th in core._threads]
        self.state = _VERIFYING

    def _port_grants(self):
        """Shared-bus grant counts for this core, or None off-chip."""
        port = self.core.hierarchy.chip_port
        if port is None:
            return None
        cid = port.core_id
        l2, mem = port._l2.grants[cid], port._mem.grants[cid]
        return (l2[0], l2[1], mem[0], mem[1])

    def _check(self) -> None:
        core = self.core
        sig2 = _signature(core, self.tab_len, self.thr_interval,
                          self.bal_on)
        if sig2 != self.sig1 or self._port_grants() != self.port_base:
            # Not steady yet (warmup transient, misaligned throttle
            # phase, aperiodic source) -- or, chip-attached, the period
            # touched the shared bus, so the core is not autonomous and
            # jumping it would skip grants its siblings must contend
            # with.  Back off exponentially: each retry costs one
            # signature comparison.
            self._fails += 1
            self._retry_at = self._lead() + 8 * (1 << min(self._fails, 6))
            self.state = _IDLE
            self.sig1 = self.snap = self.lens = self.base = None
            self.port_quiet = False
            return
        self.port_quiet = self.port_base is not None
        after = _read(self.slots)
        self.deltas = [b - a for a, b in zip(self.snap, after)]
        anchor = self.anchor
        suffix = []
        for th, lens, base in zip(core._threads, self.lens, self.base):
            if th is None:
                suffix.append(None)
                continue
            (n_end, n_start), (ret0, rep0) = lens, base
            suffix.append((
                [e - anchor for e in th.rep_end_times[n_end:]],
                [r - ret0 for r in th.rep_end_retired[n_end:]],
                [s - anchor for s in th.rep_start_times[n_start:]],
                th.rep_index - rep0,
                th.retired - ret0,
            ))
        self.suffix = suffix
        self.sig1 = self.snap = self.lens = self.base = None
        self.state = _VERIFIED

    # -- the jump -------------------------------------------------------

    def _jump(self, k: int) -> bool:
        """Advance up to ``k`` verified periods in one exact translation.

        Jumps are phase-free: signature equality at the anchor proves
        ``state(anchor + t)`` and ``state(anchor + t + P)`` are time-
        translates for every ``t >= 0`` (determinism propagates the
        anchor equality forward cycle by cycle), so a jump may start at
        any phase of the period.  Per-period counter deltas are phase-
        independent (any ``P``-cycle window sums every residue's
        per-cycle increment exactly once) and future-dated records
        translate by ``k * P`` from any phase; the per-repetition logs
        are extended by continuing the verified cyclic per-period
        pattern from the last recorded event.

        ``k`` is clamped by halving to the largest jump whose landing
        repetition still decodes the verified trace object, so a
        bounded source whose quota ends inside the horizon takes the
        shorter jumps it can still prove; only when not even one
        period fits (the quota ends within the next period) does the
        telescoper disable itself and fall back to dense.
        """
        core = self.core
        threads = core._threads
        now = core._cycle
        period = self.period
        anchor = self.anchor
        # Telescoped repetitions must decode the very trace object the
        # verified period decoded; sources are contractually
        # deterministic in rep_index, so object identity at the
        # landing repetition certifies every one in between.
        while k:
            ok = True
            for th, suf in zip(threads, self.suffix):
                if th is None or suf is None or th.finished or not suf[3]:
                    continue
                try:
                    cur = th.source.repetition(th.rep_index)
                    fut = th.source.repetition(th.rep_index + k * suf[3])
                except Exception:
                    cur = fut = None
                if cur is not th._rep_obj or fut is not th._rep_obj:
                    ok = False
                    break
            if ok:
                break
            k >>= 1
        if not k:
            self.disabled = True
            return False
        # Locate each rep log's position in the cyclic pattern before
        # mutating anything: the last recorded event's phase must be
        # one of the verified per-period phases (scanned from the back
        # so simultaneous rep ends resolve to the final one appended).
        plans = []
        for th, suf in zip(threads, self.suffix):
            if th is None or suf is None:
                plans.append(None)
                continue
            ends_rel, _, starts_rel, _, _ = suf
            idx_e = idx_s = -1
            if ends_rel:
                idx_e = _cycle_index(
                    ends_rel, (th.rep_end_times[-1] - anchor) % period)
            if starts_rel:
                idx_s = _cycle_index(
                    starts_rel, (th.rep_start_times[-1] - anchor) % period)
            if (ends_rel and idx_e < 0) or (starts_rel and idx_s < 0):
                # The log drifted off the verified pattern -- a regime
                # violation the void checks should have caught; refuse
                # to extrapolate and fall back to dense.
                self.disabled = True
                return False
            plans.append((idx_e, idx_s))
        dt = k * period
        for th, suf, plan in zip(threads, self.suffix, plans):
            if th is None or suf is None:
                continue
            ends_rel, rets_rel, starts_rel, drep, dret = suf
            idx_e, idx_s = plan
            n_e = len(ends_rel)
            if n_e:
                ends = th.rep_end_times
                rets = th.rep_end_retired
                t, r = ends[-1], rets[-1]
                wrap_t = period - ends_rel[-1] + ends_rel[0]
                wrap_r = dret - rets_rel[-1] + rets_rel[0]
                i = idx_e
                for _ in range(k * n_e):
                    j = i + 1
                    if j == n_e:
                        t += wrap_t
                        r += wrap_r
                        i = 0
                    else:
                        t += ends_rel[j] - ends_rel[i]
                        r += rets_rel[j] - rets_rel[i]
                        i = j
                    ends.append(t)
                    rets.append(r)
            n_s = len(starts_rel)
            if n_s:
                starts = th.rep_start_times
                t = starts[-1]
                wrap_t = period - starts_rel[-1] + starts_rel[0]
                i = idx_s
                for _ in range(k * n_s):
                    j = i + 1
                    if j == n_s:
                        t += wrap_t
                        i = 0
                    else:
                        t += starts_rel[j] - starts_rel[i]
                        i = j
                    starts.append(t)
            # Future-dated per-thread state.  Scoreboard entries at or
            # before ``now`` all mean "ready" and stay put (the write
            # sink and zero-register sentinels among them); in-flight
            # completions shift wholesale -- overdue ones (retire
            # budget backlog) keep their relative lateness.
            rr = th.reg_ready
            for i, r in enumerate(rr):
                if r > now:
                    rr[i] = r + dt
            if th.stall_until > now:
                th.stall_until += dt
            q = th.inflight
            kd = k * drep
            for _ in range(len(q)):
                g = q.popleft()
                q.append((g[0] + dt, g[1], g[2], g[3], g[4] + kd))
        _apply(self.slots, self.deltas, k)
        for pool in core.fus.pools():
            occ = pool._occupied
            if occ:
                kept = [(t, v) for t, v in occ.items() if t >= now]
                occ.clear()
                for t, v in kept:
                    occ[t + dt] = v
        hier = core.hierarchy
        iv = hier.lmq._intervals
        if iv:
            iv[:] = [(e + dt, s + dt) for e, s in iv]
        dram = hier.dram
        starts = dram._starts
        if starts:
            horizon = now - dram.config.dram_bus_gap
            starts[:] = [s + dt for s in starts if s > horizon]
        for inflight in hier.prefetcher._inflight:
            for line, ready in inflight.items():
                if ready > now:
                    # In-place update preserves the insertion order
                    # the capacity eviction depends on.
                    inflight[line] = ready + dt
        if self.bal_on:
            core.balancer.next_window += dt
        core._cycle = now + dt
        self.jumps += 1
        self.jumped_cycles += dt
        return True
