"""Measurement results produced by the core and consumed by FAME.

All IPC and execution-time figures follow the FAME accounting of the
paper (section 4.1): a thread's measurement window closes at the end of
its last *complete* repetition; the time of an incomplete trailing
repetition is discarded.  Additionally the first ``warmup``
repetitions are excluded from the window when enough complete
repetitions exist -- the simulator starts with cold caches, and FAME's
steady-state premise (the accumulated IPC has converged) would
otherwise require many more repetitions to wash the cold-start out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CoreConfig


@dataclass(frozen=True)
class ThreadResult:
    """Per-thread outcome of a simulation."""

    thread_id: int
    workload: str
    priority: int
    cycles: int                      # total simulated cycles
    retired: int                     # all retired instructions
    repetitions: int                 # complete repetitions
    rep_end_times: tuple[int, ...]   # completion cycle per repetition
    rep_end_retired: tuple[int, ...]  # cumulative retired at each rep end
    mispredicts: int = 0
    flushes: int = 0
    owned_slots: int = 0
    wasted_slots: int = 0
    slots_lost_gct: int = 0
    warmup: int = 1   # cold-start repetitions excluded when possible
    # PMU counters (exact in both engines; see repro.pmu).  The
    # per-cause buckets partition wasted_slots, and together with
    # groups_dispatched and slots_lost_gct they partition owned_slots.
    decoded: int = 0
    groups_dispatched: int = 0
    slots_lost_stall: int = 0
    slots_lost_balancer: int = 0
    slots_lost_throttle: int = 0
    slots_lost_other: int = 0
    operand_wait_cycles: int = 0
    fu_wait_cycles: int = 0
    flushed_instructions: int = 0
    priority_changes: int = 0

    @property
    def accounted_cycles(self) -> int:
        """Cycles until the last complete repetition (FAME window)."""
        if self.rep_end_times:
            return self.rep_end_times[-1]
        return self.cycles

    @property
    def accounted_retired(self) -> int:
        """Instructions retired within the FAME window."""
        if self.rep_end_retired:
            return self.rep_end_retired[-1]
        return self.retired

    def _steady(self) -> tuple[int, int, int] | None:
        """(cycles, retired, reps) of the post-warmup window, or None
        when too few complete repetitions exist to discard warmup."""
        if self.repetitions <= self.warmup or self.warmup < 1:
            return None
        w = self.warmup - 1
        cycles = self.rep_end_times[-1] - self.rep_end_times[w]
        retired = self.rep_end_retired[-1] - self.rep_end_retired[w]
        return cycles, retired, self.repetitions - self.warmup

    @property
    def ipc(self) -> float:
        """FAME accumulated IPC over the steady-state window."""
        steady = self._steady()
        if steady is not None:
            cycles, retired, _ = steady
            return retired / cycles if cycles else 0.0
        cycles = self.accounted_cycles
        return self.accounted_retired / cycles if cycles else 0.0

    @property
    def avg_repetition_cycles(self) -> float:
        """Average cycles per complete repetition (the paper's
        per-thread execution-time estimate), warmup excluded."""
        steady = self._steady()
        if steady is not None:
            cycles, _, reps = steady
            return cycles / reps
        if not self.repetitions:
            return float("inf")
        return self.rep_end_times[-1] / self.repetitions

    def avg_repetition_seconds(self, config: CoreConfig) -> float:
        """Average repetition time in nominal seconds."""
        return config.seconds(self.avg_repetition_cycles)


@dataclass(frozen=True)
class CoreResult:
    """Outcome of one simulation of the two-way SMT core."""

    cycles: int
    priorities: tuple[int, int]
    threads: tuple[ThreadResult, ...] = field(default_factory=tuple)

    def thread(self, thread_id: int) -> ThreadResult:
        """Result of thread ``thread_id``."""
        for tr in self.threads:
            if tr.thread_id == thread_id:
                return tr
        raise KeyError(f"no thread {thread_id} in result")

    @property
    def total_ipc(self) -> float:
        """Combined throughput: sum of per-thread FAME IPCs, as in the
        paper's ``tt`` columns and Figure 4."""
        return sum(tr.ipc for tr in self.threads)

    def speedup_over(self, baseline: "CoreResult",
                     thread_id: int = 0) -> float:
        """Per-thread execution-time ratio baseline/this (>1 = faster)."""
        mine = self.thread(thread_id).avg_repetition_cycles
        base = baseline.thread(thread_id).avg_repetition_cycles
        return base / mine if mine else float("inf")

    def throughput_factor(self, baseline: "CoreResult") -> float:
        """Total-IPC ratio relative to a baseline run (Figure 4 metric)."""
        base = baseline.total_ipc
        return self.total_ipc / base if base else float("inf")
