"""Functional-unit pools of the POWER5 core.

POWER5 issues to 2 fixed-point units (FXU), 2 load-store units (LSU),
2 floating-point units (FPU) and 1 branch unit (BXU).  Units are fully
pipelined: each accepts one operation per cycle regardless of latency.
The pools are shared by the two SMT threads -- contention between two
integer-heavy or two load-heavy threads is emergent, which is what
halves same-class pairs in the paper's Table 3.
"""

from __future__ import annotations

from repro.config import CoreConfig


class UnitPool:
    """A pool of identical, fully pipelined units.

    Scheduling is *slot occupancy*, not first-come reservation: an
    operation issues in the first cycle at or after its operands are
    ready in which fewer than ``count`` operations already occupy the
    pool.  This models out-of-order issue correctly -- an op whose
    operands are ready early is never blocked by an older op that
    reserved the unit for a far-future cycle.  The occupancy map stays
    small because the GCT bounds in-flight work; stale entries are
    garbage-collected periodically by the core.
    """

    __slots__ = ("name", "count", "_occupied", "issues", "thread_issues",
                 "total_wait")

    def __init__(self, name: str, count: int):
        if count < 1:
            raise ValueError(f"{name}: need at least one unit")
        self.name = name
        self.count = count
        self._occupied: dict[int, int] = {}
        self.issues = 0
        self.thread_issues = [0, 0]
        self.total_wait = 0

    def reset(self) -> None:
        """Free all units and zero statistics."""
        self._occupied.clear()
        self.issues = 0
        self.thread_issues = [0, 0]
        self.total_wait = 0

    def issue(self, earliest: int, thread_id: int = 0) -> int:
        """Claim an issue slot at the first free cycle >= ``earliest``."""
        occupied = self._occupied
        cap = self.count
        start = earliest
        while occupied.get(start, 0) >= cap:
            start += 1
        occupied[start] = occupied.get(start, 0) + 1
        self.total_wait += start - earliest
        self.issues += 1
        self.thread_issues[thread_id] += 1
        return start

    def collect(self, now: int) -> None:
        """Drop occupancy records older than ``now`` (bookkeeping only)."""
        occupied = self._occupied
        if len(occupied) > 4 * self.count:
            stale = [t for t in occupied if t < now]
            for t in stale:
                del occupied[t]


class FunctionalUnits:
    """All execution pools of one core."""

    def __init__(self, config: CoreConfig):
        self.fxu = UnitPool("FXU", config.num_fxu)
        self.lsu = UnitPool("LSU", config.num_lsu)
        self.fpu = UnitPool("FPU", config.num_fpu)
        self.bxu = UnitPool("BXU", config.num_bxu)

    def reset(self) -> None:
        """Free all pools."""
        self.fxu.reset()
        self.lsu.reset()
        self.fpu.reset()
        self.bxu.reset()

    def collect(self, now: int) -> None:
        """Garbage-collect stale occupancy records in all pools."""
        self.fxu.collect(now)
        self.lsu.collect(now)
        self.fpu.collect(now)
        self.bxu.collect(now)

    def pools(self) -> tuple[UnitPool, ...]:
        """All pools, for reporting."""
        return (self.fxu, self.lsu, self.fpu, self.bxu)
