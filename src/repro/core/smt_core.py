"""The cycle-level two-way SMT POWER5 core model.

This is the measurement substrate that replaces the paper's bare-metal
POWER5 (see DESIGN.md).  Per simulated cycle the core:

1. asks the :class:`PrioritySlotArbiter` which thread owns the decode
   slot (Eq. 1 of the paper, plus the special priority-0/1/7 modes);
2. lets the owner decode **one group of up to five instructions**
   (one in the low-power modes) into the shared 20-entry global
   completion table (GCT), scheduling each instruction against the
   register scoreboard, the shared functional-unit pools and the shared
   memory hierarchy;
3. retires up to one completed group per thread in order, freeing GCT
   entries and recording FAME repetition boundaries;
4. runs the dynamic resource balancer (stall / flush / throttle).

Slots are strictly owned: a slot whose owner cannot decode (stalled,
redirecting, GCT full, gated) is wasted, never handed to the sibling --
the behaviour that makes extreme negative priorities catastrophic.

The step loop is written for speed (flat locals, integer op codes,
minimal allocation): full experiment sweeps simulate hundreds of
millions of cycles.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.branch import BimodalBHT
from repro.config import CoreConfig
from repro.core.balancer import ResourceBalancer
from repro.core.fu import FunctionalUnits
from repro.core.results import CoreResult, ThreadResult
from repro.core.thread import HardwareThread, InflightGroup
from repro.isa.instruction import OpClass
from repro.isa.trace import TraceSource
from repro.memory import MemoryHierarchy
from repro.priority import PriorityInterface, PrioritySlotArbiter
from repro.priority.arbiter import ArbiterMode
from repro.priority.levels import PrivilegeLevel

# Integer opcode constants for the hot loop.
_OP_FX = int(OpClass.FX)
_OP_FX_MUL = int(OpClass.FX_MUL)
_OP_FP = int(OpClass.FP)
_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)
_OP_NOP = int(OpClass.NOP)
_OP_PRIO = int(OpClass.PRIO_NOP)

#: A repetition gate: ``gate(thread_id, rep_index, now)`` -> may start.
RepGate = Callable[[int, int, int], bool]


class SMTCore:
    """Trace-driven cycle-level model of one POWER5 core (2 SMT threads)."""

    def __init__(self, config: CoreConfig | None = None):
        self.config = config or CoreConfig()
        self.hierarchy = MemoryHierarchy(self.config)
        self.bht = BimodalBHT(self.config.branch)
        self.fus = FunctionalUnits(self.config)
        self.balancer = ResourceBalancer(self.config.balancer)
        self.interface = PriorityInterface()
        self.honor_priority_nops = True
        self._threads: list[HardwareThread | None] = [None, None]
        self._arbiter = PrioritySlotArbiter(
            4, 4, self.config.low_power_decode_interval)
        self._cycle = 0
        self._gct_used = 0
        self._rep_gate: RepGate | None = None
        # Periodic hooks: list of [period, next_fire, callable(core, now)].
        self._hooks: list[list] = []
        # Optional pipeline tracer (see repro.core.tracing); None costs
        # one comparison per decoded group.
        self._tracer = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def load(self,
             sources: Sequence[TraceSource | None],
             priorities: tuple[int, int] = (4, 4),
             privileges: tuple[PrivilegeLevel, PrivilegeLevel] = (
                 PrivilegeLevel.USER, PrivilegeLevel.USER),
             rep_gate: RepGate | None = None) -> None:
        """Reset the core and install workloads.

        ``sources`` holds one TraceSource per hardware thread; ``None``
        leaves that context empty (the machine behaves as in ST mode
        for arbitration purposes).  ``priorities`` are applied directly
        (as the patched kernel of section 4.3 would); in-trace
        ``or X,X,X`` requests are honoured against ``privileges``.
        ``rep_gate`` optionally gates the start of each repetition
        (used by the software-pipeline case study).
        """
        if len(sources) not in (1, 2):
            raise ValueError("need one or two workload sources")
        srcs = list(sources) + [None] * (2 - len(sources))
        self.hierarchy.reset()
        self.bht.reset()
        self.fus.reset()
        self.balancer.reset()
        self.interface = PriorityInterface(priorities)
        self._threads = [
            HardwareThread(i, src, privileges[i]) if src is not None else None
            for i, src in enumerate(srcs)]
        self._cycle = 0
        self._gct_used = 0
        self._rep_gate = rep_gate
        if rep_gate is not None:
            for th in self._threads:
                if th is not None:
                    th.gated = True
        self._hooks = []
        self._rebuild_arbiter()

    def attach_tracer(self, tracer) -> None:
        """Record per-instruction pipeline events into ``tracer``."""
        self._tracer = tracer

    def detach_tracer(self) -> None:
        """Stop recording pipeline events."""
        self._tracer = None

    def add_periodic_hook(self, period: int,
                          hook: Callable[["SMTCore", int], None]) -> None:
        """Run ``hook(core, now)`` every ``period`` cycles.

        Used by the kernel models to inject timer interrupts (which on
        a stock kernel reset thread priorities to MEDIUM).
        """
        if period < 1:
            raise ValueError("hook period must be >= 1")
        self._hooks.append([period, self._cycle + period, hook])

    def set_priorities(self, prio_p: int, prio_s: int) -> None:
        """Set both thread priorities with hypervisor authority."""
        self.interface.request(0, prio_p, PrivilegeLevel.HYPERVISOR)
        self.interface.request(1, prio_s, PrivilegeLevel.HYPERVISOR)
        self._rebuild_arbiter()

    @property
    def priorities(self) -> tuple[int, int]:
        """Current (thread0, thread1) software priorities."""
        p = self.interface.priorities
        return int(p[0]), int(p[1])

    @property
    def cycle(self) -> int:
        """Current simulation time in cycles."""
        return self._cycle

    def thread(self, thread_id: int) -> HardwareThread:
        """Live state of hardware thread ``thread_id``."""
        th = self._threads[thread_id]
        if th is None:
            raise KeyError(f"no workload on thread {thread_id}")
        return th

    def _rebuild_arbiter(self) -> None:
        prio_p, prio_s = self.priorities
        # An empty context never decodes: arbitrate as if shut off.
        if self._threads[0] is None:
            prio_p = 0
        if self._threads[1] is None:
            prio_s = 0
        self._arbiter = PrioritySlotArbiter(
            prio_p, prio_s, self.config.low_power_decode_interval)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self, cycles: int) -> int:
        """Simulate ``cycles`` cycles; returns cycles actually run."""
        if cycles <= 0:
            return 0
        cfg = self.config
        arbiter = self._arbiter
        owner_of = arbiter.owner
        threads = self._threads
        t0, t1 = threads[0], threads[1]
        retire_budget = cfg.retire_groups_per_cycle

        bal = self.balancer
        bal_cfg = bal.config
        bal_enabled = bal_cfg.enabled
        stall_en = bal_cfg.stall_enabled and bal_enabled
        flush_en = bal_cfg.flush_enabled and bal_enabled
        stall_thr = bal_cfg.gct_stall_threshold
        resume_thr = bal.resume_threshold
        window = bal_cfg.window_cycles

        hooks = self._hooks
        next_hook = min((h[1] for h in hooks), default=-1)

        now = self._cycle
        end = now + cycles
        next_gc = now + 1024
        while now < end:
            if now >= next_gc:
                self.fus.collect(now)
                next_gc = now + 1024
            # -- decode ------------------------------------------------
            # A slot whose owner has *no instructions at all* (empty
            # context, workload finished, or gated waiting for input)
            # passes to the sibling: hardware cannot decode from an
            # empty instruction buffer.  A slot whose owner is merely
            # blocked (GCT full, balancer, redirect) is wasted -- that
            # strictness is what starves low-priority threads.
            owner = owner_of(now)
            if owner is not None:
                th = threads[owner]
                if th is None or th.finished or (
                        th.gated and not self._gate_open(th, owner, now)):
                    owner = 1 - owner
                    th = threads[owner]
                    if th is not None and (th.finished or (
                            th.gated
                            and not self._gate_open(th, owner, now))):
                        th = None
                if th is not None:
                    th.owned_slots += 1
                    self._decode_slot(th, owner, now)
                    if arbiter is not self._arbiter:
                        # A priority nop changed the allocation.
                        arbiter = self._arbiter
                        owner_of = arbiter.owner

            # -- retire (in order, one group per thread per cycle) -----
            for th in (t0, t1):
                if th is None or not th.inflight:
                    continue
                budget = retire_budget
                q = th.inflight
                while budget and q and q[0].completion <= now:
                    g = q.popleft()
                    th.retired += g.count
                    th.gct_held -= 1
                    self._gct_used -= 1
                    budget -= 1
                    if g.rep_done:
                        th.rep_end_times.append(now)
                        th.rep_end_retired.append(th.retired)

            # -- dynamic resource balancing -----------------------------
            if bal_enabled and t0 is not None and t1 is not None:
                prio_p, prio_s = self.priorities
                for th, other, mine, theirs in ((t0, t1, prio_p, prio_s),
                                                (t1, t0, prio_s, prio_p)):
                    if other.finished:
                        if th.balancer_stalled:
                            th.balancer_stalled = False
                        continue
                    # The GCT-occupancy stall is priority-independent:
                    # it is a structural fairness floor that keeps one
                    # thread from owning the entire completion table.
                    if stall_en:
                        if th.balancer_stalled:
                            if th.gct_held <= resume_thr:
                                th.balancer_stalled = False
                        elif th.gct_held > stall_thr:
                            th.balancer_stalled = True
                            bal.stats.stall_events[th.thread_id] += 1
                        if th.balancer_stalled:
                            bal.stats.stall_cycles[th.thread_id] += 1
                    # Flush defers to software priority: hardware does
                    # not squash a thread that software explicitly
                    # favoured (see ResourceBalancer docs).
                    if (flush_en and bal.is_offender(mine, theirs)
                            and th.inflight
                            and th.stall_until <= now
                            and self._gct_used >= cfg.gct_groups - 2
                            and bal.should_flush(th.gct_held,
                                                 th.inflight[0].completion,
                                                 now)):
                        self._flush(th, now)

                if now >= bal.next_window:
                    bal.next_window = now + window
                    self._window_update(t0, t1, prio_p, prio_s)

            # -- periodic hooks -----------------------------------------
            if next_hook >= 0 and now >= next_hook:
                for h in hooks:
                    if now >= h[1]:
                        h[1] += h[0]
                        h[2](self, now)
                next_hook = min(h[1] for h in hooks)
                if arbiter is not self._arbiter:
                    arbiter = self._arbiter
                    owner_of = arbiter.owner

            now += 1

        self._cycle = now
        return cycles

    def _gate_open(self, th: HardwareThread, tid: int, now: int) -> bool:
        """Re-evaluate a gated thread's repetition gate."""
        gate = self._rep_gate
        if gate is None or gate(tid, th.rep_index, now):
            th.gated = False
            return True
        return False

    def _decode_slot(self, th: HardwareThread, tid: int, now: int) -> None:
        """Attempt to decode one group for the slot owner ``th``."""
        if th.stall_until > now or th.balancer_stalled:
            th.wasted_slots += 1
            return
        cfg = self.config
        if th.throttled and th.owned_slots % cfg.balancer.throttle_interval:
            th.wasted_slots += 1
            return
        if self._gct_used >= cfg.gct_groups:
            th.slots_lost_gct += 1
            return

        trace = th.trace
        pos = th.pos
        n = len(trace)
        if pos >= n:  # defensive: advance_repetition keeps pos < n
            th.wasted_slots += 1
            return

        mode = self._arbiter.mode
        if mode is ArbiterMode.LOW_POWER or mode is ArbiterMode.LOW_POWER_ST:
            width = 1
        else:
            width = cfg.decode_width
        break_long = cfg.break_group_on_long_dep
        branch_ends = cfg.branch_ends_group

        reg_ready = th.reg_ready
        fus = self.fus
        hier = self.hierarchy
        base = now + cfg.decode_to_issue
        fx_lat = cfg.fx_latency
        mul_lat = cfg.fx_mul_latency
        fp_lat = cfg.fp_latency
        br_lat = cfg.branch_latency

        group_comp = 0
        count = 0
        long_dsts: list[int] = []
        start_pos = pos
        start_rep = th.rep_index
        tracer = self._tracer

        while count < width and pos < n:
            ins = trace[pos]
            op = ins[0]
            s1 = ins[2]
            s2 = ins[3]
            if count and break_long and long_dsts and (
                    s1 in long_dsts or s2 in long_dsts):
                break

            earliest = base
            if s1 >= 0:
                t = reg_ready[s1]
                if t > earliest:
                    earliest = t
            if s2 >= 0:
                t = reg_ready[s2]
                if t > earliest:
                    earliest = t

            if op == _OP_FX:
                start = fus.fxu.issue(earliest, tid)
                comp = start + fx_lat
            elif op == _OP_LOAD:
                start = fus.lsu.issue(earliest, tid)
                comp = hier.load(ins[4], start, tid, now).complete
                long_dsts.append(ins[1])
            elif op == _OP_STORE:
                start = fus.lsu.issue(earliest, tid)
                comp = hier.store(ins[4], start, tid)
            elif op == _OP_FX_MUL:
                start = fus.fxu.issue(earliest, tid)
                comp = start + mul_lat
                long_dsts.append(ins[1])
            elif op == _OP_FP:
                start = fus.fpu.issue(earliest, tid)
                comp = start + fp_lat
                long_dsts.append(ins[1])
            elif op == _OP_BRANCH:
                start = fus.bxu.issue(earliest, tid)
                comp = start + br_lat
                pos += 1
                count += 1
                if comp > group_comp:
                    group_comp = comp
                if tracer is not None:
                    tracer.record(tid, op, now, start, comp)
                correct = self.bht.predict_and_update(
                    (pos << 1) | tid, ins[5] == 1, tid)
                if not correct:
                    th.mispredicts += 1
                    th.stall_until = comp + cfg.branch.mispredict_penalty
                    break
                if branch_ends:
                    break
                continue
            elif op == _OP_PRIO:
                start = comp = earliest
                if self.honor_priority_nops:
                    if self.interface.execute_nop(tid, ins, th.privilege):
                        self._rebuild_arbiter()
            else:  # _OP_NOP
                start = comp = earliest

            if tracer is not None:
                tracer.record(tid, op, now, start, comp)
            dst = ins[1]
            if dst >= 0:
                reg_ready[dst] = comp
            if comp > group_comp:
                group_comp = comp
            pos += 1
            count += 1

        if count == 0:
            # First instruction of the group hit a break rule against an
            # empty group -- cannot happen, but never dispatch nothing.
            th.wasted_slots += 1
            return

        rep_done = pos >= n
        if start_pos == 0 and len(th.rep_start_times) == start_rep:
            th.rep_start_times.append(now)
        th.inflight.append(
            InflightGroup(group_comp, count, rep_done, start_pos, start_rep))
        th.gct_held += 1
        self._gct_used += 1
        th.decoded += count
        th.groups_dispatched += 1
        th.pos = pos
        if rep_done:
            th.advance_repetition()
            if self._rep_gate is not None:
                th.gated = True

    def _flush(self, th: HardwareThread, now: int) -> None:
        """Balancer flush: squash the thread's youngest groups.

        Groups beyond the stall threshold are removed from the GCT and
        their instructions re-decoded later; the thread pays the flush
        redirect penalty.  Resource reservations already made by the
        squashed instructions are *not* undone -- a real flush wastes
        that work too.
        """
        target = self.balancer.config.gct_flush_target
        squashed_first: InflightGroup | None = None
        nsquashed = 0
        while th.gct_held > target and len(th.inflight) > 1:
            g = th.inflight.pop()
            squashed_first = g
            nsquashed += g.count
            th.gct_held -= 1
            self._gct_used -= 1
        if squashed_first is None:
            return
        th.rewind(squashed_first.rep_index, squashed_first.start_pos)
        th.decoded -= nsquashed
        th.flushes += 1
        th.flushed_instructions += nsquashed
        # Per the paper (section 3.1), a flushed thread stops decoding
        # "until the congestion clears": hold decode until its oldest
        # outstanding miss resolves (bounded), plus the refill penalty.
        oldest = th.inflight[0].completion if th.inflight else now
        hold = min(oldest, now + self.config.memory.dram_latency * 2)
        th.stall_until = max(now + self.balancer.config.flush_penalty, hold)
        self.balancer.stats.flush_events[th.thread_id] += 1
        self.balancer.stats.flushed_groups[th.thread_id] += nsquashed

    def _window_update(self, t0: HardwareThread, t1: HardwareThread,
                       prio_p: int, prio_s: int) -> None:
        """Throttle decisions at a monitoring-window boundary."""
        bal = self.balancer
        hier = self.hierarchy
        for th, other, mine, theirs in ((t0, t1, prio_p, prio_s),
                                        (t1, t0, prio_s, prio_p)):
            misses = hier.l2_miss_count(th.thread_id)
            delta = misses - th.window_l2_misses
            th.window_l2_misses = misses
            retired_delta = th.retired - th.window_retired
            th.window_retired = th.retired
            throttle = (not other.finished and mine <= theirs
                        and bal.window_throttle(delta, retired_delta))
            if throttle and not th.throttled:
                bal.stats.throttle_windows[th.thread_id] += 1
            th.throttled = throttle

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def all_finished(self) -> bool:
        """True when every loaded workload has decoded its last rep."""
        return all(th is None or th.finished for th in self._threads)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until all in-flight groups retire (bounded)."""
        ran = 0
        while ran < max_cycles and any(
                th is not None and th.inflight for th in self._threads):
            ran += self.step(256)
        return ran

    def result(self, warmup: int = 1) -> CoreResult:
        """Snapshot the measurement as a :class:`CoreResult`.

        ``warmup`` repetitions are excluded from each thread's
        steady-state metrics when enough complete repetitions exist.
        """
        prio_p, prio_s = self.priorities
        out = []
        for th in self._threads:
            if th is None:
                continue
            out.append(ThreadResult(
                warmup=warmup,
                thread_id=th.thread_id,
                workload=th.source.name,
                priority=(prio_p, prio_s)[th.thread_id],
                cycles=self._cycle,
                retired=th.retired,
                repetitions=th.completed_repetitions,
                rep_end_times=tuple(th.rep_end_times),
                rep_end_retired=tuple(th.rep_end_retired),
                mispredicts=th.mispredicts,
                flushes=th.flushes,
                owned_slots=th.owned_slots,
                wasted_slots=th.wasted_slots,
                slots_lost_gct=th.slots_lost_gct,
            ))
        return CoreResult(cycles=self._cycle,
                          priorities=(prio_p, prio_s),
                          threads=tuple(out))
