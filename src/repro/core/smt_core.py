"""The cycle-level two-way SMT POWER5 core model.

This is the measurement substrate that replaces the paper's bare-metal
POWER5 (see DESIGN.md).  Per simulated cycle the core:

1. asks the :class:`PrioritySlotArbiter` which thread owns the decode
   slot (Eq. 1 of the paper, plus the special priority-0/1/7 modes);
2. lets the owner decode **one group of up to five instructions**
   (one in the low-power modes) into the shared 20-entry global
   completion table (GCT), scheduling each instruction against the
   register scoreboard, the shared functional-unit pools and the shared
   memory hierarchy;
3. retires up to one completed group per thread in order, freeing GCT
   entries and recording FAME repetition boundaries;
4. runs the dynamic resource balancer (stall / flush / throttle).

Slots are strictly owned: a slot whose owner cannot decode (stalled,
redirecting, GCT full, gated) is wasted, never handed to the sibling --
the behaviour that makes extreme negative priorities catastrophic.

The step loop is written for speed (flat locals, integer op codes,
minimal allocation): full experiment sweeps simulate hundreds of
millions of cycles.

Two execution strategies share one per-cycle body:

- the **reference loop** (``CoreConfig.fast_forward=False``) advances
  ``now`` one cycle at a time, always;
- the **fast-forward loop** (the default) detects cycles in which no
  group was dispatched and asks :meth:`_skip_target` for the next
  *interesting* cycle -- the earliest of any thread's ``stall_until``,
  the oldest in-flight group completion, a ready thread's next owned
  decode slot (closed-form arbiter arithmetic, including low-power
  slot gaps and starvation waits), the next balancer monitoring
  window, a possible balancer flush, and the next periodic hook.  The
  skipped span is provably uneventful, so its only effects are slot
  and stall counters, which :meth:`_account_skip` applies in closed
  form.  Results are bit-identical to the reference loop; the
  differential test suite asserts this across the full workload x
  priority matrix.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.branch import BimodalBHT
from repro.config import CoreConfig
from repro.core.balancer import ResourceBalancer
from repro.core.fu import FunctionalUnits
from repro.core.results import CoreResult, ThreadResult
from repro.core.thread import HardwareThread
from repro.isa.instruction import OpClass
from repro.isa.trace import TraceSource
from repro.memory import MemoryHierarchy
from repro.priority import PriorityInterface, PrioritySlotArbiter
from repro.priority.arbiter import ArbiterMode
from repro.priority.levels import PrivilegeLevel

# Integer opcode constants for the hot loop.
_OP_FX = int(OpClass.FX)
_OP_FX_MUL = int(OpClass.FX_MUL)
_OP_FP = int(OpClass.FP)
_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)
_OP_NOP = int(OpClass.NOP)
_OP_PRIO = int(OpClass.PRIO_NOP)

#: Cycles the fast-forward planner stays vetoed after an unproductive
#: attempt.  Dense dispatch phases re-check only once per veto window
#: instead of every no-dispatch cycle; kept short (tuned against
#: BENCH_simcore.json) so memory-bound phases whose stalls begin right
#: after a failed attempt lose at most this many skippable cycles.
_PLAN_VETO_CYCLES = 8

#: Ceiling of the adaptive veto back-off.  Dense-dispatch phases (an
#: SMT pair trading every slot) never yield a skip, so repeated
#: unproductive attempts double the veto up to this bound -- capping
#: planner overhead at ~1/256 of no-dispatch cycles -- while one
#: successful skip resets it so skip-rich (DRAM-bound) phases are
#: planned at full rate.  The veto only delays *when* the planner is
#: consulted; suppression is always exact, so simulated state is
#: identical at any veto length.
_PLAN_VETO_MAX = 256

#: Skips shorter than this do not reset the veto back-off: a skip that
#: saves fewer cycles than the planner consult costs is a net loss, so
#: it must not re-arm full-rate planning.  The skip itself is still
#: taken -- it is exact and already computed.
_PLAN_VETO_SHORT = 16

#: Consecutive unproductive consults *at the maximum veto* before the
#: fast path gives up for the rest of the run.  Workloads that trade a
#: dispatch nearly every cycle (e.g. an L2-resident load thread paired
#: with an integer thread) never yield a profitable skip; past this
#: point even the per-cycle veto bookkeeping is pure overhead, so the
#: core falls back to the reference loop.  Giving up only stops
#: *looking* for skips -- the per-cycle body is the reference
#: behaviour, so results are identical -- and ``load`` re-arms it.
_PLAN_VETO_GIVEUP = 8

#: A repetition gate: ``gate(thread_id, rep_index, now)`` -> may start.
RepGate = Callable[[int, int, int], bool]


class SMTCore:
    """Trace-driven cycle-level model of one POWER5 core (2 SMT threads)."""

    def __init__(self, config: CoreConfig | None = None):
        self.config = config or CoreConfig()
        self.hierarchy = MemoryHierarchy(self.config)
        self.bht = BimodalBHT(self.config.branch)
        self.fus = FunctionalUnits(self.config)
        self.balancer = ResourceBalancer(self.config.balancer)
        self.interface = PriorityInterface()
        self.honor_priority_nops = True
        self._threads: list[HardwareThread | None] = [None, None]
        self._arbiter = PrioritySlotArbiter(
            4, 4, self.config.low_power_decode_interval)
        self._cycle = 0
        self._gct_used = 0
        self._rep_gate: RepGate | None = None
        # Periodic hooks: [period, next_fire, callable(core, now),
        # observer].  Non-observer firings bump _hook_mut_gen, which
        # the steady-replay telescoper treats as a regime void.
        self._hooks: list[list] = []
        self._hook_mut_gen = 0
        # Set when the fast-forward planner has proved unproductive for
        # the current workload (see _PLAN_VETO_GIVEUP); cleared by load.
        self._ff_giveup = False
        # Earliest pending hook fire time (-1: no hooks).  Maintained
        # on registration and after every firing so hooks registered
        # mid-step (e.g. from another hook) are never silently skipped.
        self._next_hook = -1
        # Optional pipeline tracer (see repro.core.tracing); None costs
        # one comparison per decoded group.
        self._tracer = None
        # Hot-loop constants and bound callables.  The config is frozen
        # and every component resets in place (object identity is
        # stable), so these can be hoisted once per core.
        cfg = self.config
        self._dec_consts = (
            cfg.break_group_on_long_dep,
            cfg.branch_ends_group, cfg.decode_to_issue, cfg.fx_latency,
            cfg.fx_mul_latency, cfg.fp_latency, cfg.branch_latency,
            cfg.branch.mispredict_penalty, cfg.gct_groups,
            cfg.balancer.throttle_interval)
        self._fxu_pool = self.fus.fxu
        self._lsu_pool = self.fus.lsu
        self._fpu_pool = self.fus.fpu
        self._bxu_issue = self.fus.bxu.issue
        self._hier_load = self.hierarchy.load_complete
        self._hier_store = self.hierarchy.store

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def load(self,
             sources: Sequence[TraceSource | None],
             priorities: tuple[int, int] = (4, 4),
             privileges: tuple[PrivilegeLevel, PrivilegeLevel] = (
                 PrivilegeLevel.USER, PrivilegeLevel.USER),
             rep_gate: RepGate | None = None) -> None:
        """Reset the core and install workloads.

        ``sources`` holds one TraceSource per hardware thread; ``None``
        leaves that context empty (the machine behaves as in ST mode
        for arbitration purposes).  ``priorities`` are applied directly
        (as the patched kernel of section 4.3 would); in-trace
        ``or X,X,X`` requests are honoured against ``privileges``.
        ``rep_gate`` optionally gates the start of each repetition
        (used by the software-pipeline case study).
        """
        if len(sources) not in (1, 2):
            raise ValueError("need one or two workload sources")
        srcs = list(sources) + [None] * (2 - len(sources))
        self.hierarchy.reset()
        self.bht.reset()
        self.fus.reset()
        self.balancer.reset()
        self.interface = PriorityInterface(priorities)
        self._threads = [
            self._make_thread(i, src, privileges[i])
            if src is not None else None
            for i, src in enumerate(srcs)]
        self._cycle = 0
        self._gct_used = 0
        self._rep_gate = rep_gate
        if rep_gate is not None:
            for th in self._threads:
                if th is not None:
                    th.gated = True
        self._hooks = []
        self._next_hook = -1
        self._hook_mut_gen = 0
        self._ff_giveup = False
        self._rebuild_arbiter()

    def _make_thread(self, thread_id: int, source: TraceSource,
                     privilege: PrivilegeLevel) -> HardwareThread:
        """Thread-state factory (the array engine binds compiled traces)."""
        return HardwareThread(thread_id, source, privilege)

    def attach_tracer(self, tracer) -> None:
        """Record per-instruction pipeline events into ``tracer``."""
        self._tracer = tracer

    def detach_tracer(self) -> None:
        """Stop recording pipeline events."""
        self._tracer = None

    def steady_bus_quiet(self) -> bool:
        """True when this core is in a verified bus-quiet steady regime.

        :class:`~repro.chip.Chip` consults this to enlarge its
        synchronization quantum: a core whose verified steady period
        makes zero shared-bus requests cannot interact with its
        siblings, so slicing it finely buys nothing.  The object engine
        never proves periodicity, hence always ``False``; the array
        engine overrides this (see
        :meth:`repro.core.array_engine.ArraySMTCore.steady_bus_quiet`).
        """
        return False

    def add_periodic_hook(self, period: int,
                          hook: Callable[["SMTCore", int], None],
                          observer: bool = False) -> None:
        """Run ``hook(core, now)`` every ``period`` cycles.

        Used by the kernel models to inject timer interrupts (which on
        a stock kernel reset thread priorities to MEDIUM).

        ``observer=True`` declares that the hook perturbs the machine
        -- if at all -- only through the priority interface or the
        prefetch knobs (both of which the steady-replay telescoper
        already watches): PMU samplers and governors qualify, as do
        kernel timer ticks whose sole effect is a priority reset.  The
        telescoper may then jump across the hook's firings while they
        observe without acting; a hook left at the default
        ``observer=False`` bumps :attr:`_hook_mut_gen` every firing,
        voiding any verified steady regime (see
        :mod:`repro.core.steadyreplay`).
        """
        if period < 1:
            raise ValueError("hook period must be >= 1")
        fire = self._cycle + period
        self._hooks.append([period, fire, hook, observer])
        if self._next_hook < 0 or fire < self._next_hook:
            self._next_hook = fire

    def set_priorities(self, prio_p: int, prio_s: int) -> None:
        """Set both thread priorities with hypervisor authority."""
        self.interface.request(0, prio_p, PrivilegeLevel.HYPERVISOR)
        self.interface.request(1, prio_s, PrivilegeLevel.HYPERVISOR)
        self._rebuild_arbiter()

    @property
    def priorities(self) -> tuple[int, int]:
        """Current (thread0, thread1) software priorities."""
        p = self.interface.priorities
        return int(p[0]), int(p[1])

    @property
    def cycle(self) -> int:
        """Current simulation time in cycles."""
        return self._cycle

    def thread(self, thread_id: int) -> HardwareThread:
        """Live state of hardware thread ``thread_id``."""
        th = self._threads[thread_id]
        if th is None:
            raise KeyError(f"no workload on thread {thread_id}")
        return th

    def _rebuild_arbiter(self) -> None:
        prio_p, prio_s = self.priorities
        # An empty context never decodes: arbitrate as if shut off.
        if self._threads[0] is None:
            prio_p = 0
        if self._threads[1] is None:
            prio_s = 0
        self._arbiter = PrioritySlotArbiter(
            prio_p, prio_s, self.config.low_power_decode_interval)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self, cycles: int) -> int:
        """Simulate ``cycles`` cycles; returns cycles actually run."""
        if cycles <= 0:
            return 0
        cfg = self.config
        arbiter = self._arbiter
        owner_of = arbiter.owner
        threads = self._threads
        t0, t1 = threads[0], threads[1]
        retire_budget = cfg.retire_groups_per_cycle

        bal = self.balancer
        bal_cfg = bal.config
        bal_enabled = bal_cfg.enabled
        stall_en = bal_cfg.stall_enabled and bal_enabled
        flush_en = bal_cfg.flush_enabled and bal_enabled
        stall_thr = bal_cfg.gct_stall_threshold
        resume_thr = bal.resume_threshold
        window = bal_cfg.window_cycles
        stall_events = bal.stats.stall_events
        stall_cycles = bal.stats.stall_cycles
        gct_floor = cfg.gct_groups - 2

        prio_p, prio_s = self.priorities
        # Fast-forward needs every in-loop callback site to be
        # predictable; a repetition gate is an arbitrary callable
        # evaluated per cycle, so gated runs use the reference loop.
        fast = (cfg.fast_forward and self._rep_gate is None
                and not self._ff_giveup)
        decode_slot = self._decode_slot
        gct_groups = cfg.gct_groups
        bal_on = bal_enabled and t0 is not None and t1 is not None

        # NORMAL-mode slot ownership is a modulo test; inline it and
        # refresh the locals whenever the arbiter is rebuilt.
        (arb_norm, arb_ratio, arb_high, arb_low,
         dense_a, dense_b, dec_width) = self._arb_locals()

        now = self._cycle
        end = now + cycles
        next_gc = now + 1024
        # Planner back-off: after an unproductive fast-forward attempt
        # (dense-thread suppression, or a planner call that found the
        # very next cycle eventful) the machine is in a phase where no
        # skippable span exists, and re-evaluating the gate every
        # no-dispatch cycle costs more than the per-cycle body itself.
        # Veto planning for a few cycles instead; suppression is always
        # safe because the per-cycle body *is* the reference behaviour,
        # and a successful skip keeps the veto at zero so skip-rich
        # phases (DRAM-bound spans) are planned at full rate.  The veto
        # window doubles after each unproductive attempt (up to
        # _PLAN_VETO_MAX) so dense-dispatch SMT phases, which never
        # skip, pay for the planner at most once per 256 cycles, and a
        # run that stays unproductive even at the ceiling gives up on
        # fast-forward entirely (_PLAN_VETO_GIVEUP).
        plan_veto = 0
        veto_len = _PLAN_VETO_CYCLES
        giveup_left = _PLAN_VETO_GIVEUP
        while now < end:
            if now >= next_gc:
                self.fus.collect(now)
                next_gc = now + 1024
            # -- decode ------------------------------------------------
            # A slot whose owner has *no instructions at all* (empty
            # context, workload finished, or gated waiting for input)
            # passes to the sibling: hardware cannot decode from an
            # empty instruction buffer.  A slot whose owner is merely
            # blocked (GCT full, balancer, redirect) is wasted -- that
            # strictness is what starves low-priority threads.
            dispatched = False
            if arb_norm:
                owner = arb_high if now % arb_ratio else arb_low
            else:
                owner = owner_of(now)
            if owner is not None:
                th = threads[owner]
                if th is None or th.finished or (
                        th.gated and not self._gate_open(th, owner, now)):
                    owner = 1 - owner
                    th = threads[owner]
                    if th is not None and (th.finished or (
                            th.gated
                            and not self._gate_open(th, owner, now))):
                        th = None
                if th is not None:
                    th.owned_slots += 1
                    dispatched = decode_slot(th, owner, now, dec_width)
            if arbiter is not self._arbiter:
                # A priority nop (or an in-loop callback) changed the
                # slot allocation.
                arbiter = self._arbiter
                owner_of = arbiter.owner
                prio_p, prio_s = self.priorities
                (arb_norm, arb_ratio, arb_high, arb_low,
                 dense_a, dense_b, dec_width) = self._arb_locals()

            # -- retire (in order, one group per thread per cycle) -----
            # Unrolled over the two threads: this runs every cycle and
            # the loop form costs a tuple + iterator allocation.
            if t0 is not None and t0.inflight:
                budget = retire_budget
                q = t0.inflight
                while budget and q and q[0][0] <= now:
                    g = q.popleft()
                    t0.retired += g[1]
                    t0.gct_held -= 1
                    self._gct_used -= 1
                    budget -= 1
                    if g[2]:
                        t0.rep_end_times.append(now)
                        t0.rep_end_retired.append(t0.retired)
            if t1 is not None and t1.inflight:
                budget = retire_budget
                q = t1.inflight
                while budget and q and q[0][0] <= now:
                    g = q.popleft()
                    t1.retired += g[1]
                    t1.gct_held -= 1
                    self._gct_used -= 1
                    budget -= 1
                    if g[2]:
                        t1.rep_end_times.append(now)
                        t1.rep_end_retired.append(t1.retired)

            # -- dynamic resource balancing -----------------------------
            # Also unrolled (thread 0 then thread 1, same order as the
            # reference loop so flush-induced GCT changes are seen by
            # the second thread's checks).
            if bal_on:
                if t1.finished:
                    if t0.balancer_stalled:
                        t0.balancer_stalled = False
                else:
                    # The GCT-occupancy stall is priority-independent:
                    # it is a structural fairness floor that keeps one
                    # thread from owning the entire completion table.
                    if stall_en:
                        if t0.balancer_stalled:
                            if t0.gct_held <= resume_thr:
                                t0.balancer_stalled = False
                        elif t0.gct_held > stall_thr:
                            t0.balancer_stalled = True
                            stall_events[0] += 1
                        if t0.balancer_stalled:
                            stall_cycles[0] += 1
                    # Flush defers to software priority: hardware does
                    # not squash a thread that software explicitly
                    # favoured (see ResourceBalancer docs).
                    if (flush_en and prio_p <= prio_s
                            and t0.inflight
                            and t0.stall_until <= now
                            and self._gct_used >= gct_floor
                            and bal.should_flush(t0.gct_held,
                                                 t0.inflight[0][0],
                                                 now)):
                        self._flush(t0, now)
                if t0.finished:
                    if t1.balancer_stalled:
                        t1.balancer_stalled = False
                else:
                    if stall_en:
                        if t1.balancer_stalled:
                            if t1.gct_held <= resume_thr:
                                t1.balancer_stalled = False
                        elif t1.gct_held > stall_thr:
                            t1.balancer_stalled = True
                            stall_events[1] += 1
                        if t1.balancer_stalled:
                            stall_cycles[1] += 1
                    if (flush_en and prio_s <= prio_p
                            and t1.inflight
                            and t1.stall_until <= now
                            and self._gct_used >= gct_floor
                            and bal.should_flush(t1.gct_held,
                                                 t1.inflight[0][0],
                                                 now)):
                        self._flush(t1, now)

                if now >= bal.next_window:
                    bal.next_window = now + window
                    self._window_update(t0, t1, prio_p, prio_s)

            # -- periodic hooks -----------------------------------------
            next_hook = self._next_hook
            if 0 <= next_hook <= now:
                for h in self._hooks:
                    if now >= h[1]:
                        h[1] += h[0]
                        h[2](self, now)
                        if not h[3]:
                            self._hook_mut_gen += 1
                self._next_hook = min(h[1] for h in self._hooks)
                if arbiter is not self._arbiter:
                    arbiter = self._arbiter
                    owner_of = arbiter.owner
                    prio_p, prio_s = self.priorities
                    (arb_norm, arb_ratio, arb_high, arb_low,
                     dense_a, dense_b, dec_width) = self._arb_locals()

            now += 1

            # -- fast-forward over provably-uneventful cycles ----------
            if fast and not dispatched and now < end:
                if plan_veto:
                    plan_veto -= 1
                # Cheap gate before the exact planner: when a thread
                # whose slots are *dense* (next owned slot at most a
                # few cycles away) is ready to decode, any skip would
                # be shorter than the planning cost.
                elif (self._gct_used < gct_groups
                        and ((dense_a is not None and not dense_a.finished
                              and dense_a.stall_until <= now
                              and not dense_a.balancer_stalled
                              and not dense_a.throttled)
                             or (dense_b is not None
                                 and not dense_b.finished
                                 and dense_b.stall_until <= now
                                 and not dense_b.balancer_stalled
                                 and not dense_b.throttled))):
                    plan_veto = veto_len
                    if veto_len < _PLAN_VETO_MAX:
                        veto_len *= 2
                    elif giveup_left:
                        giveup_left -= 1
                        if not giveup_left:
                            fast = False
                            self._ff_giveup = True
                else:
                    target = self._skip_target(now, end, prio_p, prio_s)
                    if target >= now + _PLAN_VETO_SHORT:
                        self._account_skip(now, target)
                        now = target
                        veto_len = _PLAN_VETO_CYCLES
                        giveup_left = _PLAN_VETO_GIVEUP
                    else:
                        # A short skip is still taken (it is exact and
                        # already computed) but counts as unproductive:
                        # it saved less than the consult cost.
                        if target > now:
                            self._account_skip(now, target)
                            now = target
                        plan_veto = veto_len
                        if veto_len < _PLAN_VETO_MAX:
                            veto_len *= 2
                        elif giveup_left:
                            giveup_left -= 1
                            if not giveup_left:
                                fast = False
                                self._ff_giveup = True

        self._cycle = now
        return cycles

    def _arb_locals(self):
        """Arbiter-derived locals for :meth:`step`'s hot loop.

        Recomputed only when the arbiter object changes (priority nop,
        hook, or in-loop callback), never per cycle.
        """
        arb = self._arbiter
        mode = arb.mode
        high = arb._high
        dense_a, dense_b = self._dense_threads()
        if mode is ArbiterMode.LOW_POWER or mode is ArbiterMode.LOW_POWER_ST:
            width = 1
        else:
            width = self.config.decode_width
        return (mode is ArbiterMode.NORMAL, arb._ratio, high, 1 - high,
                dense_a, dense_b, width)

    def _dense_threads(self):
        """Threads whose effective slot pattern has only tiny gaps.

        Used by the fast-forward gate in :meth:`step`: when such a
        thread is ready to decode, the next eventful cycle is at most a
        couple of cycles away and planning a skip cannot pay for
        itself.  Conservative by construction -- omitting a thread only
        costs planner invocations, never correctness.
        """
        arb = self._arbiter
        threads = self._threads
        mode = arb.mode
        if mode is ArbiterMode.NORMAL:
            hi = threads[arb._high]
            if arb._ratio <= 4:
                return hi, threads[1 - arb._high]
            return hi, None
        if mode is ArbiterMode.SINGLE_THREAD:
            return threads[arb._st_owner], None
        return None, None

    def _skip_target(self, a: int, end: int,
                     prio_p: int, prio_s: int) -> int:
        """End of the uneventful span starting at cycle ``a``.

        Returns the earliest cycle in ``[a, end]`` at which anything
        observable might happen -- a decode by a ready thread, a group
        retirement, a stall expiry, a balancer flush or monitoring
        window, or a periodic hook.  Returning ``a`` means the span is
        empty and the per-cycle loop must run.  Every cycle strictly
        before the returned target provably only increments slot and
        stall counters (applied by :meth:`_account_skip`).
        """
        b = end
        nh = self._next_hook
        if nh >= 0:
            if nh <= a:
                return a
            if nh < b:
                b = nh
        threads = self._threads
        t0, t1 = threads[0], threads[1]
        bal = self.balancer
        bal_cfg = bal.config
        bal_active = (bal_cfg.enabled
                      and t0 is not None and t1 is not None)
        if bal_active:
            nw = bal.next_window
            if nw <= a:
                return a
            if nw < b:
                b = nw
        cfg = self.config
        gct_full = self._gct_used >= cfg.gct_groups
        flush_en = bal_active and bal_cfg.flush_enabled
        alive = (t0 is not None and not t0.finished,
                 t1 is not None and not t1.finished)
        arb = self._arbiter
        for tid, th in ((0, t0), (1, t1)):
            if th is None:
                continue
            inflight = th.inflight
            if inflight:
                head = inflight[0][0]
                if head <= a:
                    return a
                if head < b:
                    b = head
            su = th.stall_until
            if su > a:
                # The stall expiry re-enables decode and arms the
                # balancer flush condition; end the span there.
                if su < b:
                    b = su
            elif flush_en and inflight:
                # stall_until has passed: a balancer flush could fire
                # at ``a`` itself (its horizon term only weakens as
                # time advances, so checking ``a`` covers the span).
                mine = prio_p if tid == 0 else prio_s
                theirs = prio_s if tid == 0 else prio_p
                other = threads[1 - tid]
                if (mine <= theirs and not other.finished
                        and self._gct_used >= cfg.gct_groups - 2
                        and bal.should_flush(th.gct_held,
                                             inflight[0][0], a)):
                    return a
            if not alive[tid]:
                continue
            if th.pos >= len(th.trace):
                return a  # defensive path of _decode_slot; never skip
            if su > a or th.balancer_stalled:
                continue  # cannot decode anywhere in the span
            if th.throttled:
                if gct_full:
                    continue  # throttle-eligible slots lose to the GCT
                interval = bal_cfg.throttle_interval
                need = -th.owned_slots % interval
                c = arb.nth_owned(tid, a, need if need else interval,
                                  alive)
            elif gct_full:
                continue  # every owned slot is lost to the full GCT
            else:
                c = arb.nth_owned(tid, a, 1, alive)
            if c is not None:
                if c <= a:
                    return a
                if c < b:
                    b = c
        return b

    def _account_skip(self, a: int, b: int) -> None:
        """Apply the per-cycle counter effects of skipping ``[a, b)``.

        The planner guarantees no decode, retirement, flush, window
        update or hook fires in the span, so the only observable
        effects are the slot-ownership counters (owned / wasted /
        lost-to-GCT, in the same precedence as ``_decode_slot``) and
        the balancer's stalled-cycle statistics.  The per-cause PMU
        buckets are attributed in closed form too: the planner caps
        every span at ``stall_until``, the next retirement and the
        next balancer window, so a thread's blocking cause
        (stall / balancer-stall / throttle / GCT-full) is constant
        across the whole span and one bucket absorbs all its slots.
        """
        threads = self._threads
        t0, t1 = threads[0], threads[1]
        alive = (t0 is not None and not t0.finished,
                 t1 is not None and not t1.finished)
        arb = self._arbiter
        cfg = self.config
        gct_full = self._gct_used >= cfg.gct_groups
        interval = cfg.balancer.throttle_interval
        for tid, th in ((0, t0), (1, t1)):
            if not alive[tid]:
                continue
            owned = arb.owned_in(tid, a, b, alive)
            if not owned:
                continue
            th.owned_slots += owned
            if th.stall_until > a:
                th.wasted_slots += owned
                th.slots_lost_stall += owned
            elif th.balancer_stalled:
                th.wasted_slots += owned
                th.slots_lost_balancer += owned
            elif th.throttled:
                if gct_full:
                    # Non-eligible slots waste on the throttle;
                    # throttle-eligible ones fall through to the GCT
                    # check and are lost there instead.
                    before = th.owned_slots - owned
                    eligible = ((before + owned) // interval
                                - before // interval)
                    th.slots_lost_gct += eligible
                    th.wasted_slots += owned - eligible
                    th.slots_lost_throttle += owned - eligible
                else:
                    # The planner capped the span before the first
                    # throttle-eligible slot.
                    th.wasted_slots += owned
                    th.slots_lost_throttle += owned
            else:
                # A ready thread owns no slots in the span (the
                # planner capped it), so only the GCT case remains.
                th.slots_lost_gct += owned
        bal = self.balancer
        bal_cfg = bal.config
        if (bal_cfg.enabled and bal_cfg.stall_enabled
                and t0 is not None and t1 is not None):
            span = b - a
            if t0.balancer_stalled and not t1.finished:
                bal.stats.stall_cycles[0] += span
            if t1.balancer_stalled and not t0.finished:
                bal.stats.stall_cycles[1] += span

    def _gate_open(self, th: HardwareThread, tid: int, now: int) -> bool:
        """Re-evaluate a gated thread's repetition gate."""
        gate = self._rep_gate
        if gate is None or gate(tid, th.rep_index, now):
            th.gated = False
            return True
        return False

    def _decode_slot(self, th: HardwareThread, tid: int, now: int,
                     width: int = 0) -> bool:
        """Attempt to decode one group for the slot owner ``th``.

        ``width`` is the group width under the current arbiter mode
        (precomputed by the caller; 0 means derive it here).  Returns
        True when a group was dispatched (the cycle was *eventful*);
        False when the slot was wasted or lost.
        """
        if th.stall_until > now:
            th.wasted_slots += 1
            th.slots_lost_stall += 1
            return False
        if th.balancer_stalled:
            th.wasted_slots += 1
            th.slots_lost_balancer += 1
            return False
        (break_long, branch_ends, d2i, fx_lat, mul_lat, fp_lat,
         br_lat, misp_pen, gct_groups, thr_interval) = self._dec_consts
        if th.throttled and th.owned_slots % thr_interval:
            th.wasted_slots += 1
            th.slots_lost_throttle += 1
            return False
        if self._gct_used >= gct_groups:
            th.slots_lost_gct += 1
            return False

        trace = th.trace
        pos = th.pos
        n = len(trace)
        if pos >= n:  # defensive: advance_repetition keeps pos < n
            th.wasted_slots += 1
            th.slots_lost_other += 1
            return False

        if not width:
            width = self._arb_locals()[6]

        reg_ready = th.reg_ready
        # Functional-unit issue is inlined below (UnitPool.issue with
        # the call overhead stripped); these locals mirror its state.
        fxu = self._fxu_pool
        fxu_occ = fxu._occupied
        fxu_cap = fxu.count
        fxu_ti = fxu.thread_issues
        lsu = self._lsu_pool
        lsu_occ = lsu._occupied
        lsu_cap = lsu.count
        lsu_ti = lsu.thread_issues
        fpu_issue = self._fpu_pool.issue
        hier_load = self._hier_load
        hier_store = self._hier_store
        base = now + d2i

        group_comp = 0
        count = 0
        long_dsts: list[int] = []
        start_pos = pos
        start_rep = th.rep_index
        tracer = self._tracer
        op_wait = 0
        fu_wait = 0

        while count < width and pos < n:
            ins = trace[pos]
            op, dst, s1, s2, addr, aux = ins
            if count and break_long and long_dsts and (
                    s1 in long_dsts or s2 in long_dsts):
                break

            earliest = base
            if s1 >= 0:
                t = reg_ready[s1]
                if t > earliest:
                    earliest = t
            if s2 >= 0:
                t = reg_ready[s2]
                if t > earliest:
                    earliest = t
            op_wait += earliest - base

            if op == _OP_FX:
                start = earliest
                while fxu_occ.get(start, 0) >= fxu_cap:
                    start += 1
                fxu_occ[start] = fxu_occ.get(start, 0) + 1
                fxu.total_wait += start - earliest
                fxu.issues += 1
                fxu_ti[tid] += 1
                fu_wait += start - earliest
                comp = start + fx_lat
            elif op == _OP_LOAD:
                start = earliest
                while lsu_occ.get(start, 0) >= lsu_cap:
                    start += 1
                lsu_occ[start] = lsu_occ.get(start, 0) + 1
                lsu.total_wait += start - earliest
                lsu.issues += 1
                lsu_ti[tid] += 1
                fu_wait += start - earliest
                comp = hier_load(addr, start, tid, now)
                long_dsts.append(dst)
            elif op == _OP_STORE:
                start = earliest
                while lsu_occ.get(start, 0) >= lsu_cap:
                    start += 1
                lsu_occ[start] = lsu_occ.get(start, 0) + 1
                lsu.total_wait += start - earliest
                lsu.issues += 1
                lsu_ti[tid] += 1
                fu_wait += start - earliest
                comp = hier_store(addr, start, tid)
            elif op == _OP_FX_MUL:
                start = earliest
                while fxu_occ.get(start, 0) >= fxu_cap:
                    start += 1
                fxu_occ[start] = fxu_occ.get(start, 0) + 1
                fxu.total_wait += start - earliest
                fxu.issues += 1
                fxu_ti[tid] += 1
                fu_wait += start - earliest
                comp = start + mul_lat
                long_dsts.append(dst)
            elif op == _OP_FP:
                start = fpu_issue(earliest, tid)
                fu_wait += start - earliest
                comp = start + fp_lat
                long_dsts.append(dst)
            elif op == _OP_BRANCH:
                start = self._bxu_issue(earliest, tid)
                fu_wait += start - earliest
                comp = start + br_lat
                pos += 1
                count += 1
                if comp > group_comp:
                    group_comp = comp
                if tracer is not None:
                    tracer.record(tid, op, now, start, comp)
                correct = self.bht.predict_and_update(
                    (pos << 1) | tid, aux == 1, tid)
                if not correct:
                    th.mispredicts += 1
                    th.stall_until = comp + misp_pen
                    break
                if branch_ends:
                    break
                continue
            elif op == _OP_PRIO:
                start = comp = earliest
                if self.honor_priority_nops:
                    if self.interface.execute_nop(tid, ins, th.privilege):
                        th.priority_changes += 1
                        self._rebuild_arbiter()
            else:  # _OP_NOP
                start = comp = earliest

            if tracer is not None:
                tracer.record(tid, op, now, start, comp)
            if dst >= 0:
                reg_ready[dst] = comp
            if comp > group_comp:
                group_comp = comp
            pos += 1
            count += 1

        if count == 0:
            # First instruction of the group hit a break rule against an
            # empty group -- cannot happen, but never dispatch nothing.
            th.wasted_slots += 1
            th.slots_lost_other += 1
            return False

        if op_wait:
            th.operand_wait_cycles += op_wait
        if fu_wait:
            th.fu_wait_cycles += fu_wait
        rep_done = pos >= n
        if start_pos == 0 and len(th.rep_start_times) == start_rep:
            th.rep_start_times.append(now)
        th.inflight.append((group_comp, count, rep_done, start_pos, start_rep))
        th.gct_held += 1
        self._gct_used += 1
        th.decoded += count
        th.groups_dispatched += 1
        th.pos = pos
        if rep_done:
            th.advance_repetition()
            if self._rep_gate is not None:
                th.gated = True
        return True

    def _flush(self, th: HardwareThread, now: int) -> None:
        """Balancer flush: squash the thread's youngest groups.

        Groups beyond the stall threshold are removed from the GCT and
        their instructions re-decoded later; the thread pays the flush
        redirect penalty.  Resource reservations already made by the
        squashed instructions are *not* undone -- a real flush wastes
        that work too.
        """
        target = self.balancer.config.gct_flush_target
        squashed_first = None
        nsquashed = 0
        while th.gct_held > target and len(th.inflight) > 1:
            g = th.inflight.pop()
            squashed_first = g
            nsquashed += g[1]
            th.gct_held -= 1
            self._gct_used -= 1
        if squashed_first is None:
            return
        th.rewind(squashed_first[4], squashed_first[3])
        th.decoded -= nsquashed
        th.flushes += 1
        th.flushed_instructions += nsquashed
        # Per the paper (section 3.1), a flushed thread stops decoding
        # "until the congestion clears": hold decode until its oldest
        # outstanding miss resolves (bounded), plus the refill penalty.
        oldest = th.inflight[0][0] if th.inflight else now
        hold = min(oldest, now + self.config.memory.dram_latency * 2)
        th.stall_until = max(now + self.balancer.config.flush_penalty, hold)
        self.balancer.stats.flush_events[th.thread_id] += 1
        self.balancer.stats.flushed_groups[th.thread_id] += nsquashed

    def _window_update(self, t0: HardwareThread, t1: HardwareThread,
                       prio_p: int, prio_s: int) -> None:
        """Throttle decisions at a monitoring-window boundary."""
        bal = self.balancer
        hier = self.hierarchy
        for th, other, mine, theirs in ((t0, t1, prio_p, prio_s),
                                        (t1, t0, prio_s, prio_p)):
            misses = hier.l2_miss_count(th.thread_id)
            delta = misses - th.window_l2_misses
            th.window_l2_misses = misses
            retired_delta = th.retired - th.window_retired
            th.window_retired = th.retired
            throttle = (not other.finished and mine <= theirs
                        and bal.window_throttle(delta, retired_delta))
            if throttle and not th.throttled:
                bal.stats.throttle_windows[th.thread_id] += 1
            th.throttled = throttle

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def all_finished(self) -> bool:
        """True when every loaded workload has decoded its last rep."""
        return all(th is None or th.finished for th in self._threads)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until all in-flight groups retire (bounded)."""
        ran = 0
        while ran < max_cycles and any(
                th is not None and th.inflight for th in self._threads):
            ran += self.step(256)
        return ran

    def result(self, warmup: int = 1) -> CoreResult:
        """Snapshot the measurement as a :class:`CoreResult`.

        ``warmup`` repetitions are excluded from each thread's
        steady-state metrics when enough complete repetitions exist.
        """
        prio_p, prio_s = self.priorities
        out = []
        for th in self._threads:
            if th is None:
                continue
            out.append(ThreadResult(
                warmup=warmup,
                thread_id=th.thread_id,
                workload=th.source.name,
                priority=(prio_p, prio_s)[th.thread_id],
                cycles=self._cycle,
                retired=th.retired,
                repetitions=th.completed_repetitions,
                rep_end_times=tuple(th.rep_end_times),
                rep_end_retired=tuple(th.rep_end_retired),
                mispredicts=th.mispredicts,
                flushes=th.flushes,
                owned_slots=th.owned_slots,
                wasted_slots=th.wasted_slots,
                slots_lost_gct=th.slots_lost_gct,
                decoded=th.decoded,
                groups_dispatched=th.groups_dispatched,
                slots_lost_stall=th.slots_lost_stall,
                slots_lost_balancer=th.slots_lost_balancer,
                slots_lost_throttle=th.slots_lost_throttle,
                slots_lost_other=th.slots_lost_other,
                operand_wait_cycles=th.operand_wait_cycles,
                fu_wait_cycles=th.fu_wait_cycles,
                flushed_instructions=th.flushed_instructions,
                priority_changes=th.priority_changes,
            ))
        return CoreResult(cycles=self._cycle,
                          priorities=(prio_p, prio_s),
                          threads=tuple(out))
