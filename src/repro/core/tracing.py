"""Opt-in pipeline event tracing.

Attach a :class:`PipelineTracer` to a core to record, per dynamic
instruction, when it was decoded, when it issued and when it
completed.  Useful for debugging workload schedules and for the
examples' timeline rendering.  Tracing is off by default and costs
nothing when detached.

Interaction with the event-driven fast-forward engine: tracing is
**exact** under fast-forwarding, by construction rather than by
gating.  Events are recorded at decode time, and the skip planner
(:meth:`repro.core.SMTCore._skip_target`) ends every span at the next
cycle a ready thread could decode -- a skipped span never contains a
decode.  Both engines therefore execute the identical sequence of
decode cycles with identical machine state, and the recorded
(decode, issue, complete) triples are bit-identical between
``fast_forward=True`` and the per-cycle reference engine.  The
test-suite asserts this equivalence over microbenchmark pairs and
priority differences (see ``tests/test_tracing_fast_forward.py``).

::

    tracer = PipelineTracer(limit=10_000)
    core.attach_tracer(tracer)
    core.step(200)
    print(tracer.render_timeline(thread_id=0, first=0, count=20))
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.isa.instruction import OpClass


@dataclass(frozen=True)
class PipelineEvent:
    """Lifecycle of one dynamic instruction."""

    thread_id: int
    op: OpClass
    decode: int      # cycle the instruction entered a group
    issue: int       # cycle it claimed its functional unit
    complete: int    # cycle its result was ready

    @property
    def issue_delay(self) -> int:
        """Cycles between decode and issue (queue + operand wait)."""
        return self.issue - self.decode

    @property
    def latency(self) -> int:
        """Issue-to-complete latency."""
        return self.complete - self.issue


class PipelineTracer:
    """Bounded recorder of per-instruction pipeline events."""

    def __init__(self, limit: int = 100_000):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self.events: list[PipelineEvent] = []
        self.dropped = 0

    def record(self, thread_id: int, op: int, decode: int, issue: int,
               complete: int) -> None:
        """Record one instruction (called from the core's decode)."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(PipelineEvent(
            thread_id=thread_id, op=OpClass(op), decode=decode,
            issue=issue, complete=complete))

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
        self.dropped = 0

    def thread_events(self, thread_id: int) -> list[PipelineEvent]:
        """Events of one hardware thread, in decode order."""
        return [e for e in self.events if e.thread_id == thread_id]

    def latency_by_class(self) -> dict[OpClass, float]:
        """Mean issue-to-complete latency per operation class."""
        buckets: dict[OpClass, list[int]] = {}
        for e in self.events:
            buckets.setdefault(e.op, []).append(e.latency)
        return {op: mean(vals) for op, vals in buckets.items()}

    def issue_delay_by_class(self) -> dict[OpClass, float]:
        """Mean decode-to-issue delay per operation class."""
        buckets: dict[OpClass, list[int]] = {}
        for e in self.events:
            buckets.setdefault(e.op, []).append(e.issue_delay)
        return {op: mean(vals) for op, vals in buckets.items()}

    def render_timeline(self, thread_id: int = 0, first: int = 0,
                        count: int = 32, width: int = 64) -> str:
        """Text pipeline diagram: D = decode, = wait, X = execute.

        One row per instruction; the horizontal axis is cycles from
        the first shown instruction's decode.
        """
        events = self.thread_events(thread_id)[first:first + count]
        if not events:
            return "(no events)"
        origin = events[0].decode
        lines = [f"thread {thread_id}, cycles from {origin}:"]
        for i, e in enumerate(events):
            d = e.decode - origin
            s = e.issue - origin
            c = e.complete - origin
            if d >= width:
                lines.append(f"{i + first:>5} {e.op.name:<8} "
                             f"(off scale: decode at +{d})")
                continue
            c = min(c, width - 1)
            s = min(s, c)
            row = [" "] * width
            for x in range(d, s):
                row[x] = "="
            for x in range(s, c):
                row[x] = "X"
            row[d] = "D"
            lines.append(f"{i + first:>5} {e.op.name:<8} {''.join(row)}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
