"""Compiled-trace dense-dispatch engine (``CoreConfig.engine="array"``).

:class:`ArraySMTCore` replaces the decode/issue/retire hot path of
:class:`~repro.core.smt_core.SMTCore` with **per-trace compiled
kernels**: :mod:`repro.isa.kernelgen` lowers each workload trace to
one straightline Python function per decode-group start (register
indices, latencies, occupancy caps and branch keys baked in as
literals, intra-group dependencies forwarded through locals), and the
step loop dispatches a whole group with one ``kernels[pos](now, tid)``
call.  Three layers of cost disappear relative to the object engine:

- the per-instruction interpreter work (tuple unpack, opcode cascade,
  operand scans) -- a kernel runs ~3 bytecodes per simulated slot;
- the per-group ``_decode_slot`` call and its ~25-local prologue;
- the per-cycle attribute traffic on hot counters -- the step loop
  keeps the per-thread dispatch/retire counters (owned slots, GCT
  held, retired, decoded, wait accumulators) in *locals* and syncs
  them to the thread objects only at the rare boundaries where
  something else can observe them: before a balancer flush, a
  monitoring-window update, a periodic hook, a fast-forward plan, a
  reference-path decode, and on return from ``step``.

Exactness is structural, not approximate: a kernel performs exactly
the scoreboard reads, unit-pool claims and counter increments the
reference decode loop would (unit-pool ``issues``/``thread_issues``/
``total_wait`` are folded per group, which is exact at cycle
granularity), and every group the kernels *cannot* express -- groups
containing a priority nop, traces with dynamic group extents, traces
too large to compile -- falls back to the inherited
``SMTCore._decode_slot``, which is the reference implementation
itself.  Instrumented runs (pipeline tracer) and repetition-gated
runs route to the inherited step loop wholesale.  The object engine
remains the differential reference, exactly as ``fast_forward=False``
remains the reference for the skip planner;
``tests/test_array_engine_differential`` asserts bit-identity across
the full microbenchmark x priority matrix.

Kernel binding: a kernel list is instantiated per (thread, trace,
group width) by the process-wide factory cache in
:mod:`repro.workloads.tracecache`.  Sources that return the same
repetition object every time (all built-in workloads) rebind by
identity -- no per-repetition hashing.
"""

from __future__ import annotations

from repro.config import CoreConfig
from repro.core.smt_core import (
    _PLAN_VETO_CYCLES,
    _PLAN_VETO_GIVEUP,
    _PLAN_VETO_MAX,
    _PLAN_VETO_SHORT,
    SMTCore,
)
from repro.core.steadyreplay import _VERIFIED as _VERIFIED_STATE
from repro.core.steadyreplay import SteadyReplay
from repro.core.thread import HardwareThread
from repro.isa.compiled import SCOREBOARD_SLOTS
from repro.isa.kernelgen import KernelConsts
from repro.isa.trace import TraceSource
from repro.priority.arbiter import ArbiterMode
from repro.priority.levels import PrivilegeLevel

#: ``ArrayThread.kernels`` value meaning "not bound yet" (None means
#: "bound, but the trace is not kernelizable: use the reference path").
_UNBOUND = object()

#: Memoised accessor for the process-wide kernel-factory cache.  Bound
#: lazily: ``repro.workloads`` imports ``repro.core`` at module scope,
#: so the reverse edge must wait until both packages are initialised.
_kernel_factory = None


def _factory(instructions: tuple, consts: KernelConsts):
    global _kernel_factory
    if _kernel_factory is None:
        from repro.workloads.tracecache import kernel_factory
        _kernel_factory = kernel_factory
    return _kernel_factory(instructions, consts)


class ArrayThread(HardwareThread):
    """Hardware-thread state plus compiled kernels for its trace.

    ``kernels`` always mirrors ``trace``: every path that can replace
    the trace list (construction, repetition advance, flush rewind)
    invalidates the binding, and the engine rebinds lazily through the
    process-wide factory cache.  Rebinding is keyed on the *identity*
    of the source's repetition object, so steady sources (which return
    the same sequence every repetition) never re-hash their trace.
    The scoreboard gains the two sentinel slots compiled register
    indices address (see :mod:`repro.isa.compiled`).
    """

    def __init__(self, thread_id: int, source: TraceSource,
                 privilege: PrivilegeLevel = PrivilegeLevel.USER):
        super().__init__(thread_id, source, privilege)
        self.reg_ready = [0] * SCOREBOARD_SLOTS
        self._rep_obj: object | None = None
        self._bound_trace: list | None = None
        self._trace_tuple: tuple = ()
        self.kernels = _UNBOUND
        self._kern_width = -1
        #: factory -> instantiated kernel list (one entry per width the
        #: run has used; alternating rewind targets reuse entries).
        self._kern_cache: dict = {}
        self._bind()

    def _bind(self) -> None:
        self._bound_trace = self.trace
        self._trace_tuple = tuple(self.trace)
        self.kernels = _UNBOUND
        self._kern_width = -1

    def advance_repetition(self) -> None:
        self.rep_index += 1
        try:
            nxt = self.source.repetition(self.rep_index)
        except StopIteration:
            nxt = ()
        if nxt is not None and nxt is self._rep_obj:
            # Same repetition object as the bound trace: reuse the
            # trace list and the compiled kernels untouched (the
            # engine never mutates a trace).
            self.trace = self._bound_trace
            self.pos = 0
            return
        trace = list(nxt)
        if not trace:
            self.finished = True
            self.trace = []
            self._rep_obj = None
        else:
            self.trace = trace
            self._rep_obj = nxt
        self.pos = 0
        self._bind()

    def rewind(self, rep_index: int, pos: int) -> None:
        if rep_index != self.rep_index:
            self.rep_index = rep_index
            nxt = self.source.repetition(rep_index)
            if nxt is not None and nxt is self._rep_obj:
                self.trace = self._bound_trace
            else:
                self.trace = list(nxt)
                self._rep_obj = nxt
                self._bind()
            self.finished = False
        self.pos = pos


class ArraySMTCore(SMTCore):
    """The compiled-kernel engine.  See the module docstring."""

    def __init__(self, config: CoreConfig | None = None):
        super().__init__(config)
        # Compiled per-priority dispatch table: slot owner for one full
        # period of the current arbiter's rotation.  Invalidated by
        # _rebuild_arbiter so priority nops, sysfs writes and governor
        # actuations land at the next decode boundary exactly as in
        # the object engine.
        self._dispatch_tab: list | None = None
        self._dispatch_arb = None
        # Group width -> baked kernel constants.
        self._kern_consts: dict[int, KernelConsts] = {}
        # Steady-state replay telescoping (exact whole-period jumps in
        # uninstrumented runs).  The flag is an instance toggle rather
        # than a CoreConfig field: jumps are bit-exact, so the knob is
        # not part of the machine's identity (config fingerprints and
        # cached results stay comparable across it).
        self.steady_replay = True
        self._steady: SteadyReplay | None = None

    def load(self, *args, **kwargs) -> None:
        super().load(*args, **kwargs)
        self._steady = SteadyReplay(self)

    def _make_thread(self, thread_id: int, source: TraceSource,
                     privilege: PrivilegeLevel) -> ArrayThread:
        return ArrayThread(thread_id, source, privilege)

    def _rebuild_arbiter(self) -> None:
        self._dispatch_tab = None
        super()._rebuild_arbiter()

    def _consts(self, width: int) -> KernelConsts:
        consts = self._kern_consts.get(width)
        if consts is None:
            cfg = self.config
            consts = KernelConsts(
                width=width,
                break_long=cfg.break_group_on_long_dep,
                branch_ends=cfg.branch_ends_group,
                decode_to_issue=cfg.decode_to_issue,
                fx_latency=cfg.fx_latency,
                fx_mul_latency=cfg.fx_mul_latency,
                fp_latency=cfg.fp_latency,
                branch_latency=cfg.branch_latency,
                fxu_cap=cfg.num_fxu,
                lsu_cap=cfg.num_lsu,
                fpu_cap=cfg.num_fpu,
                bxu_cap=cfg.num_bxu)
            self._kern_consts[width] = consts
        return consts

    def _live_kernels(self, th: ArrayThread | None, width: int):
        """Kernel list for ``th``'s current trace at ``width`` (or None).

        Instantiation binds the thread scoreboard, this core's unit
        pools, memory hierarchy and branch predictor into the kernels'
        default arguments; all of those are identity-stable across
        ``reset`` (they clear in place), and threads are constructed
        after the pools reset in :meth:`SMTCore.load`.
        """
        if th is None:
            return None
        kernels = th.kernels
        if kernels is not _UNBOUND and th._kern_width == width:
            return kernels
        factory = _factory(th._trace_tuple, self._consts(width))
        if factory is None:
            kernels = None
        else:
            kernels = th._kern_cache.get(factory)
            if kernels is None:
                kernels = factory(
                    th, self._fxu_pool, self._lsu_pool, self._fpu_pool,
                    self.fus.bxu, self._hier_load, self._hier_store,
                    self.bht.predict_and_update)
                th._kern_cache[factory] = kernels
        th.kernels = kernels
        th._kern_width = width
        return kernels

    def _array_locals(self):
        """Hot-loop locals: dense threads, width and dispatch table.

        The table maps ``cycle % len(table)`` to the owning thread id
        (or None) -- every arbiter mode's owner pattern is periodic
        with the period used here, which ``owner()`` itself guarantees
        since the table is built by evaluating it.
        """
        dense_a, dense_b = self._dense_threads()
        arb = self._arbiter
        mode = arb.mode
        if mode is ArbiterMode.LOW_POWER or mode is ArbiterMode.LOW_POWER_ST:
            width = 1
        else:
            width = self.config.decode_width
        tab = self._dispatch_tab
        if tab is None or self._dispatch_arb is not arb:
            if mode is ArbiterMode.NORMAL:
                period = arb._ratio
            elif mode is ArbiterMode.LOW_POWER:
                period = 2 * arb.low_power_interval
            elif mode is ArbiterMode.LOW_POWER_ST:
                period = arb.low_power_interval
            else:  # SINGLE_THREAD / ALL_OFF: constant owner
                period = 1
            owner = arb.owner
            tab = [owner(c) for c in range(period)]
            self._dispatch_tab = tab
            self._dispatch_arb = arb
        return dense_a, dense_b, width, tab, len(tab)

    def step(self, cycles: int) -> int:
        """Simulate ``cycles`` cycles; returns cycles actually run.

        Runs go through the steady-state replay driver
        (:mod:`repro.core.steadyreplay`), which mixes dense spans with
        exact whole-period jumps once the machine has settled into a
        verified periodic regime.  Hooked runs (PMU sampling, the
        governor, kernel timer ticks) telescope too: the driver clamps
        every jump at the next pending fire time and dense spans fire
        hooks at their exact cycle, so observations land on the same
        cycles with the same counter values as a fully dense run.
        Chip-attached cores (``hierarchy.chip_port``) telescope only
        inside regimes verified to make zero shared-bus grants.  Only
        the tracer and repetition gates -- per-cycle observers no jump
        can reproduce -- force the plain dense path, as does
        ``steady_replay = False``.
        """
        if cycles <= 0:
            return 0
        replay = self._steady
        if (replay is None or replay.disabled
                or not self.steady_replay
                or self._tracer is not None
                or self._rep_gate is not None):
            return self._step_dense(cycles)
        replay.run(self._cycle + cycles)
        return cycles

    def steady_bus_quiet(self) -> bool:
        """True in a verified steady regime that never touches the bus.

        :class:`~repro.chip.Chip` uses this to enlarge its
        synchronization quantum: a chip-attached core only reaches
        ``_VERIFIED`` when its verification period made zero shared-bus
        grants, so until the regime voids it cannot interact with
        sibling cores and fine slicing buys nothing.  Periodic hooks
        (kernel timer, governor, sampler) do not disqualify a core:
        they fire at their exact cycles inside any quantum (jumps clamp
        at the next fire time) and touch only their own core's state.
        """
        replay = self._steady
        return (replay is not None and not replay.disabled
                and self.steady_replay
                and replay.state == _VERIFIED_STATE
                and replay.port_quiet
                and self._tracer is None
                and self._rep_gate is None)

    def _step_dense(self, cycles: int) -> int:  # noqa: C901 (the hot loop)
        """Simulate ``cycles`` cycles one at a time (no telescoping)."""
        if cycles <= 0:
            return 0
        if self._tracer is not None or self._rep_gate is not None:
            # Per-instruction tracing and per-cycle repetition gating
            # are the instrumented object loop's job.
            return super().step(cycles)
        cfg = self.config
        arbiter = self._arbiter
        t0, t1 = self._threads
        retire_budget = cfg.retire_groups_per_cycle

        bal = self.balancer
        bal_cfg = bal.config
        bal_enabled = bal_cfg.enabled
        stall_en = bal_cfg.stall_enabled and bal_enabled
        flush_en = bal_cfg.flush_enabled and bal_enabled
        stall_thr = bal_cfg.gct_stall_threshold
        resume_thr = bal.resume_threshold
        window = bal_cfg.window_cycles
        stall_events = bal.stats.stall_events
        stall_cycles = bal.stats.stall_cycles
        gct_floor = cfg.gct_groups - 2
        flush_thr = bal_cfg.gct_flush_threshold
        horizon = bal.FLUSH_HORIZON

        prio_p, prio_s = self.priorities
        fast = cfg.fast_forward and not self._ff_giveup
        gct_groups = cfg.gct_groups
        bal_on = bal_enabled and t0 is not None and t1 is not None
        misp_pen = cfg.branch.mispredict_penalty
        thr_interval = bal_cfg.throttle_interval
        decode_slot = self._decode_slot  # reference path (prio groups,
        #                                  unkernelizable traces)
        BIG = 1 << 62

        dense_a, dense_b, dec_width, tab, tab_len = self._array_locals()
        da = -1 if dense_a is None else dense_a.thread_id
        db = -1 if dense_b is None else dense_b.thread_id
        one = tab_len == 1
        tid0 = tab[0]
        kern0 = self._live_kernels(t0, dec_width)
        kern1 = self._live_kernels(t1, dec_width)

        # Hot per-thread state lives in locals; the thread objects are
        # synced before anything that can observe them runs (reference
        # decode, flush, window update, hooks, the skip planner) and on
        # return.  ``balancer_stalled`` is written through on change
        # (transitions are rare) so the attribute is never stale;
        # ``throttled`` is only ever written by the window update and
        # hooks, so the local is reloaded there.
        if t0 is not None:
            q0 = t0.inflight
            ends0, rets0 = t0.rep_end_times, t0.rep_end_retired
            rst0 = t0.rep_start_times
            own0, gh0, ret0 = t0.owned_slots, t0.gct_held, t0.retired
            dec0, grp0 = t0.decoded, t0.groups_dispatched
            opw0, fuw0 = t0.operand_wait_cycles, t0.fu_wait_cycles
            ws0, lg0 = t0.wasted_slots, t0.slots_lost_gct
            ls0, lb0 = t0.slots_lost_stall, t0.slots_lost_balancer
            lt0, mis0 = t0.slots_lost_throttle, t0.mispredicts
            su0, pos0 = t0.stall_until, t0.pos
            bst0, thr0 = t0.balancer_stalled, t0.throttled
            rep0, n0 = t0.rep_index, len(t0.trace)
            avail0 = not t0.finished
            nc0 = q0[0][0] if q0 else BIG
        else:
            q0 = None
            ends0 = rets0 = rst0 = None
            own0 = gh0 = ret0 = dec0 = grp0 = opw0 = fuw0 = 0
            ws0 = lg0 = ls0 = lb0 = lt0 = mis0 = 0
            su0 = pos0 = rep0 = n0 = 0
            bst0 = thr0 = False
            avail0 = False
            nc0 = BIG
        if t1 is not None:
            q1 = t1.inflight
            ends1, rets1 = t1.rep_end_times, t1.rep_end_retired
            rst1 = t1.rep_start_times
            own1, gh1, ret1 = t1.owned_slots, t1.gct_held, t1.retired
            dec1, grp1 = t1.decoded, t1.groups_dispatched
            opw1, fuw1 = t1.operand_wait_cycles, t1.fu_wait_cycles
            ws1, lg1 = t1.wasted_slots, t1.slots_lost_gct
            ls1, lb1 = t1.slots_lost_stall, t1.slots_lost_balancer
            lt1, mis1 = t1.slots_lost_throttle, t1.mispredicts
            su1, pos1 = t1.stall_until, t1.pos
            bst1, thr1 = t1.balancer_stalled, t1.throttled
            rep1, n1 = t1.rep_index, len(t1.trace)
            avail1 = not t1.finished
            nc1 = q1[0][0] if q1 else BIG
        else:
            q1 = None
            ends1 = rets1 = rst1 = None
            own1 = gh1 = ret1 = dec1 = grp1 = opw1 = fuw1 = 0
            ws1 = lg1 = ls1 = lb1 = lt1 = mis1 = 0
            su1 = pos1 = rep1 = n1 = 0
            bst1 = thr1 = False
            avail1 = False
            nc1 = BIG
        gct_used = self._gct_used

        now = self._cycle
        end = now + cycles
        next_gc = now + 1024
        # One folded deadline gates the three per-cycle bookkeeping
        # checks (unit-pool GC, balancer window, periodic hooks): each
        # component only moves inside a ``slow`` iteration, so the
        # deadline is recomputed there and nowhere else.
        due = next_gc
        if bal_on:
            nw = bal.next_window
            if nw < due:
                due = nw
        nh = self._next_hook
        if 0 <= nh < due:
            due = nh
        plan_veto = 0
        veto_len = _PLAN_VETO_CYCLES
        giveup_left = _PLAN_VETO_GIVEUP
        while now < end:
            slow = now >= due
            if slow and now >= next_gc:
                self.fus.collect(now)
                next_gc = now + 1024
            # -- decode ------------------------------------------------
            # Same slot-passing strictness as the object engine: an
            # *empty* owner (no context, workload finished) passes the
            # slot to the sibling; a merely *blocked* owner wastes it.
            dispatched = False
            tid = tid0 if one else tab[now % tab_len]
            if tid is not None:
                if tid == 0:
                    dec = 0 if avail0 else (1 if avail1 else -1)
                else:
                    dec = 1 if avail1 else (0 if avail0 else -1)
                if dec == 0:
                    own0 += 1
                    if su0 > now:
                        ws0 += 1
                        ls0 += 1
                    elif bst0:
                        ws0 += 1
                        lb0 += 1
                    elif thr0 and own0 % thr_interval:
                        ws0 += 1
                        lt0 += 1
                    elif gct_used >= gct_groups:
                        lg0 += 1
                    else:
                        p = pos0
                        k = (kern0[p]
                             if kern0 is not None and p < n0 else None)
                        if k is not None:
                            p2, cnt, gcomp, ow, fw, mc, rd = k(now, 0)
                            opw0 += ow
                            fuw0 += fw
                            if mc >= 0:
                                mis0 += 1
                                su0 = mc + misp_pen
                            if p == 0 and len(rst0) == rep0:
                                rst0.append(now)
                            q0.append((gcomp, cnt, rd, p, rep0))
                            if nc0 == BIG:
                                nc0 = gcomp
                            gh0 += 1
                            gct_used += 1
                            dec0 += cnt
                            grp0 += 1
                            dispatched = True
                            pos0 = p2
                            if rd:
                                t0.advance_repetition()
                                pos0 = 0
                                rep0 = t0.rep_index
                                n0 = len(t0.trace)
                                avail0 = not t0.finished
                                kern0 = self._live_kernels(t0, dec_width)
                        else:
                            # Reference path: prio group, unkernelized
                            # trace, or the defensive pos-overrun case.
                            t0.owned_slots = own0
                            t0.gct_held = gh0
                            t0.retired = ret0
                            t0.decoded = dec0
                            t0.groups_dispatched = grp0
                            t0.operand_wait_cycles = opw0
                            t0.fu_wait_cycles = fuw0
                            t0.wasted_slots = ws0
                            t0.slots_lost_gct = lg0
                            t0.slots_lost_stall = ls0
                            t0.slots_lost_balancer = lb0
                            t0.slots_lost_throttle = lt0
                            t0.mispredicts = mis0
                            t0.stall_until = su0
                            t0.pos = pos0
                            self._gct_used = gct_used
                            dispatched = decode_slot(t0, 0, now, dec_width)
                            own0 = t0.owned_slots
                            gh0 = t0.gct_held
                            dec0 = t0.decoded
                            grp0 = t0.groups_dispatched
                            opw0 = t0.operand_wait_cycles
                            fuw0 = t0.fu_wait_cycles
                            ws0 = t0.wasted_slots
                            lg0 = t0.slots_lost_gct
                            ls0 = t0.slots_lost_stall
                            lb0 = t0.slots_lost_balancer
                            lt0 = t0.slots_lost_throttle
                            mis0 = t0.mispredicts
                            su0 = t0.stall_until
                            pos0 = t0.pos
                            gct_used = self._gct_used
                            rep0 = t0.rep_index
                            n0 = len(t0.trace)
                            avail0 = not t0.finished
                            nc0 = q0[0][0] if q0 else BIG
                            if arbiter is not self._arbiter:
                                arbiter = self._arbiter
                                prio_p, prio_s = self.priorities
                                (dense_a, dense_b, dec_width,
                                 tab, tab_len) = self._array_locals()
                                da = (-1 if dense_a is None
                                      else dense_a.thread_id)
                                db = (-1 if dense_b is None
                                      else dense_b.thread_id)
                                one = tab_len == 1
                                tid0 = tab[0]
                                kern1 = self._live_kernels(t1, dec_width)
                            kern0 = self._live_kernels(t0, dec_width)
                elif dec == 1:
                    own1 += 1
                    if su1 > now:
                        ws1 += 1
                        ls1 += 1
                    elif bst1:
                        ws1 += 1
                        lb1 += 1
                    elif thr1 and own1 % thr_interval:
                        ws1 += 1
                        lt1 += 1
                    elif gct_used >= gct_groups:
                        lg1 += 1
                    else:
                        p = pos1
                        k = (kern1[p]
                             if kern1 is not None and p < n1 else None)
                        if k is not None:
                            p2, cnt, gcomp, ow, fw, mc, rd = k(now, 1)
                            opw1 += ow
                            fuw1 += fw
                            if mc >= 0:
                                mis1 += 1
                                su1 = mc + misp_pen
                            if p == 0 and len(rst1) == rep1:
                                rst1.append(now)
                            q1.append((gcomp, cnt, rd, p, rep1))
                            if nc1 == BIG:
                                nc1 = gcomp
                            gh1 += 1
                            gct_used += 1
                            dec1 += cnt
                            grp1 += 1
                            dispatched = True
                            pos1 = p2
                            if rd:
                                t1.advance_repetition()
                                pos1 = 0
                                rep1 = t1.rep_index
                                n1 = len(t1.trace)
                                avail1 = not t1.finished
                                kern1 = self._live_kernels(t1, dec_width)
                        else:
                            t1.owned_slots = own1
                            t1.gct_held = gh1
                            t1.retired = ret1
                            t1.decoded = dec1
                            t1.groups_dispatched = grp1
                            t1.operand_wait_cycles = opw1
                            t1.fu_wait_cycles = fuw1
                            t1.wasted_slots = ws1
                            t1.slots_lost_gct = lg1
                            t1.slots_lost_stall = ls1
                            t1.slots_lost_balancer = lb1
                            t1.slots_lost_throttle = lt1
                            t1.mispredicts = mis1
                            t1.stall_until = su1
                            t1.pos = pos1
                            self._gct_used = gct_used
                            dispatched = decode_slot(t1, 1, now, dec_width)
                            own1 = t1.owned_slots
                            gh1 = t1.gct_held
                            dec1 = t1.decoded
                            grp1 = t1.groups_dispatched
                            opw1 = t1.operand_wait_cycles
                            fuw1 = t1.fu_wait_cycles
                            ws1 = t1.wasted_slots
                            lg1 = t1.slots_lost_gct
                            ls1 = t1.slots_lost_stall
                            lb1 = t1.slots_lost_balancer
                            lt1 = t1.slots_lost_throttle
                            mis1 = t1.mispredicts
                            su1 = t1.stall_until
                            pos1 = t1.pos
                            gct_used = self._gct_used
                            rep1 = t1.rep_index
                            n1 = len(t1.trace)
                            avail1 = not t1.finished
                            nc1 = q1[0][0] if q1 else BIG
                            if arbiter is not self._arbiter:
                                arbiter = self._arbiter
                                prio_p, prio_s = self.priorities
                                (dense_a, dense_b, dec_width,
                                 tab, tab_len) = self._array_locals()
                                da = (-1 if dense_a is None
                                      else dense_a.thread_id)
                                db = (-1 if dense_b is None
                                      else dense_b.thread_id)
                                one = tab_len == 1
                                tid0 = tab[0]
                                kern0 = self._live_kernels(t0, dec_width)
                            kern1 = self._live_kernels(t1, dec_width)

            # -- retire (in order, one group per thread per cycle) -----
            if nc0 <= now:
                budget = retire_budget
                while True:
                    g = q0.popleft()
                    ret0 += g[1]
                    gh0 -= 1
                    gct_used -= 1
                    if g[2]:
                        ends0.append(now)
                        rets0.append(ret0)
                    budget -= 1
                    if q0:
                        nc0 = q0[0][0]
                        if not budget or nc0 > now:
                            break
                    else:
                        nc0 = BIG
                        break
            if nc1 <= now:
                budget = retire_budget
                while True:
                    g = q1.popleft()
                    ret1 += g[1]
                    gh1 -= 1
                    gct_used -= 1
                    if g[2]:
                        ends1.append(now)
                        rets1.append(ret1)
                    budget -= 1
                    if q1:
                        nc1 = q1[0][0]
                        if not budget or nc1 > now:
                            break
                    else:
                        nc1 = BIG
                        break

            # -- dynamic resource balancing ----------------------------
            if bal_on:
                if not avail1:
                    if bst0:
                        bst0 = t0.balancer_stalled = False
                else:
                    if stall_en:
                        if bst0:
                            if gh0 <= resume_thr:
                                bst0 = t0.balancer_stalled = False
                        elif gh0 > stall_thr:
                            bst0 = t0.balancer_stalled = True
                            stall_events[0] += 1
                        if bst0:
                            stall_cycles[0] += 1
                    # should_flush inlined: threshold + horizon test.
                    if (flush_en and prio_p <= prio_s and gh0
                            and su0 <= now
                            and gct_used >= gct_floor
                            and gh0 >= flush_thr
                            and nc0 > now + horizon):
                        t0.gct_held = gh0
                        t0.decoded = dec0
                        self._gct_used = gct_used
                        self._flush(t0, now)
                        gh0 = t0.gct_held
                        dec0 = t0.decoded
                        gct_used = self._gct_used
                        su0 = t0.stall_until
                        pos0 = t0.pos
                        rep0 = t0.rep_index
                        n0 = len(t0.trace)
                        avail0 = not t0.finished
                        kern0 = self._live_kernels(t0, dec_width)
                        nc0 = q0[0][0] if q0 else BIG
                if not avail0:
                    if bst1:
                        bst1 = t1.balancer_stalled = False
                else:
                    if stall_en:
                        if bst1:
                            if gh1 <= resume_thr:
                                bst1 = t1.balancer_stalled = False
                        elif gh1 > stall_thr:
                            bst1 = t1.balancer_stalled = True
                            stall_events[1] += 1
                        if bst1:
                            stall_cycles[1] += 1
                    if (flush_en and prio_s <= prio_p and gh1
                            and su1 <= now
                            and gct_used >= gct_floor
                            and gh1 >= flush_thr
                            and nc1 > now + horizon):
                        t1.gct_held = gh1
                        t1.decoded = dec1
                        self._gct_used = gct_used
                        self._flush(t1, now)
                        gh1 = t1.gct_held
                        dec1 = t1.decoded
                        gct_used = self._gct_used
                        su1 = t1.stall_until
                        pos1 = t1.pos
                        rep1 = t1.rep_index
                        n1 = len(t1.trace)
                        avail1 = not t1.finished
                        kern1 = self._live_kernels(t1, dec_width)
                        nc1 = q1[0][0] if q1 else BIG

                if slow and now >= bal.next_window:
                    bal.next_window = now + window
                    t0.retired = ret0
                    t1.retired = ret1
                    self._window_update(t0, t1, prio_p, prio_s)
                    thr0 = t0.throttled
                    thr1 = t1.throttled

            # -- periodic hooks ----------------------------------------
            if slow and 0 <= self._next_hook <= now:
                # Hooks observe everything (PMU capture, governor
                # policies): sync the localized state out first and
                # reload after -- a hook may retune priorities or read
                # any thread counter.
                if t0 is not None:
                    t0.owned_slots = own0
                    t0.gct_held = gh0
                    t0.retired = ret0
                    t0.decoded = dec0
                    t0.groups_dispatched = grp0
                    t0.operand_wait_cycles = opw0
                    t0.fu_wait_cycles = fuw0
                    t0.wasted_slots = ws0
                    t0.slots_lost_gct = lg0
                    t0.slots_lost_stall = ls0
                    t0.slots_lost_balancer = lb0
                    t0.slots_lost_throttle = lt0
                    t0.mispredicts = mis0
                    t0.stall_until = su0
                    t0.pos = pos0
                if t1 is not None:
                    t1.owned_slots = own1
                    t1.gct_held = gh1
                    t1.retired = ret1
                    t1.decoded = dec1
                    t1.groups_dispatched = grp1
                    t1.operand_wait_cycles = opw1
                    t1.fu_wait_cycles = fuw1
                    t1.wasted_slots = ws1
                    t1.slots_lost_gct = lg1
                    t1.slots_lost_stall = ls1
                    t1.slots_lost_balancer = lb1
                    t1.slots_lost_throttle = lt1
                    t1.mispredicts = mis1
                    t1.stall_until = su1
                    t1.pos = pos1
                self._gct_used = gct_used
                for h in self._hooks:
                    if now >= h[1]:
                        h[1] += h[0]
                        h[2](self, now)
                        if not h[3]:
                            self._hook_mut_gen += 1
                self._next_hook = min(h[1] for h in self._hooks)
                if t0 is not None:
                    own0, gh0, ret0 = (t0.owned_slots, t0.gct_held,
                                       t0.retired)
                    dec0, grp0 = t0.decoded, t0.groups_dispatched
                    opw0, fuw0 = (t0.operand_wait_cycles,
                                  t0.fu_wait_cycles)
                    ws0, lg0 = t0.wasted_slots, t0.slots_lost_gct
                    ls0, lb0 = (t0.slots_lost_stall,
                                t0.slots_lost_balancer)
                    lt0, mis0 = t0.slots_lost_throttle, t0.mispredicts
                    su0, pos0 = t0.stall_until, t0.pos
                    bst0, thr0 = t0.balancer_stalled, t0.throttled
                    rep0, n0 = t0.rep_index, len(t0.trace)
                    avail0 = not t0.finished
                    nc0 = q0[0][0] if q0 else BIG
                if t1 is not None:
                    own1, gh1, ret1 = (t1.owned_slots, t1.gct_held,
                                       t1.retired)
                    dec1, grp1 = t1.decoded, t1.groups_dispatched
                    opw1, fuw1 = (t1.operand_wait_cycles,
                                  t1.fu_wait_cycles)
                    ws1, lg1 = t1.wasted_slots, t1.slots_lost_gct
                    ls1, lb1 = (t1.slots_lost_stall,
                                t1.slots_lost_balancer)
                    lt1, mis1 = t1.slots_lost_throttle, t1.mispredicts
                    su1, pos1 = t1.stall_until, t1.pos
                    bst1, thr1 = t1.balancer_stalled, t1.throttled
                    rep1, n1 = t1.rep_index, len(t1.trace)
                    avail1 = not t1.finished
                    nc1 = q1[0][0] if q1 else BIG
                gct_used = self._gct_used
                if arbiter is not self._arbiter:
                    arbiter = self._arbiter
                    prio_p, prio_s = self.priorities
                    (dense_a, dense_b, dec_width,
                     tab, tab_len) = self._array_locals()
                    da = -1 if dense_a is None else dense_a.thread_id
                    db = -1 if dense_b is None else dense_b.thread_id
                    one = tab_len == 1
                    tid0 = tab[0]
                kern0 = self._live_kernels(t0, dec_width)
                kern1 = self._live_kernels(t1, dec_width)

            if slow:
                due = next_gc
                if bal_on:
                    nw = bal.next_window
                    if nw < due:
                        due = nw
                nh = self._next_hook
                if 0 <= nh < due:
                    due = nh

            now += 1

            # -- fast-forward over provably-uneventful cycles ----------
            if fast and not dispatched and now < end:
                if plan_veto:
                    plan_veto -= 1
                elif (gct_used < gct_groups
                        and (((da == 0 or db == 0) and avail0
                              and su0 <= now and not bst0 and not thr0)
                             or ((da == 1 or db == 1) and avail1
                                 and su1 <= now and not bst1
                                 and not thr1))):
                    plan_veto = veto_len
                    if veto_len < _PLAN_VETO_MAX:
                        veto_len *= 2
                    elif giveup_left:
                        giveup_left -= 1
                        if not giveup_left:
                            fast = False
                            self._ff_giveup = True
                else:
                    # The planner reads slot/GCT/stall/position state;
                    # the accounting writes the slot-loss counters.
                    if t0 is not None:
                        t0.owned_slots = own0
                        t0.gct_held = gh0
                        t0.stall_until = su0
                        t0.pos = pos0
                        t0.wasted_slots = ws0
                        t0.slots_lost_gct = lg0
                        t0.slots_lost_stall = ls0
                        t0.slots_lost_balancer = lb0
                        t0.slots_lost_throttle = lt0
                    if t1 is not None:
                        t1.owned_slots = own1
                        t1.gct_held = gh1
                        t1.stall_until = su1
                        t1.pos = pos1
                        t1.wasted_slots = ws1
                        t1.slots_lost_gct = lg1
                        t1.slots_lost_stall = ls1
                        t1.slots_lost_balancer = lb1
                        t1.slots_lost_throttle = lt1
                    self._gct_used = gct_used
                    target = self._skip_target(now, end, prio_p, prio_s)
                    if target > now:
                        self._account_skip(now, target)
                        short = target - now < _PLAN_VETO_SHORT
                        now = target
                        if t0 is not None:
                            own0 = t0.owned_slots
                            ws0 = t0.wasted_slots
                            lg0 = t0.slots_lost_gct
                            ls0 = t0.slots_lost_stall
                            lb0 = t0.slots_lost_balancer
                            lt0 = t0.slots_lost_throttle
                        if t1 is not None:
                            own1 = t1.owned_slots
                            ws1 = t1.wasted_slots
                            lg1 = t1.slots_lost_gct
                            ls1 = t1.slots_lost_stall
                            lb1 = t1.slots_lost_balancer
                            lt1 = t1.slots_lost_throttle
                        if short:
                            # Short skips (see _PLAN_VETO_SHORT) count
                            # as unproductive for the back-off.
                            plan_veto = veto_len
                            if veto_len < _PLAN_VETO_MAX:
                                veto_len *= 2
                            elif giveup_left:
                                giveup_left -= 1
                                if not giveup_left:
                                    fast = False
                                    self._ff_giveup = True
                        else:
                            veto_len = _PLAN_VETO_CYCLES
                            giveup_left = _PLAN_VETO_GIVEUP
                    else:
                        plan_veto = veto_len
                        if veto_len < _PLAN_VETO_MAX:
                            veto_len *= 2
                        elif giveup_left:
                            giveup_left -= 1
                            if not giveup_left:
                                fast = False
                                self._ff_giveup = True

        if t0 is not None:
            t0.owned_slots = own0
            t0.gct_held = gh0
            t0.retired = ret0
            t0.decoded = dec0
            t0.groups_dispatched = grp0
            t0.operand_wait_cycles = opw0
            t0.fu_wait_cycles = fuw0
            t0.wasted_slots = ws0
            t0.slots_lost_gct = lg0
            t0.slots_lost_stall = ls0
            t0.slots_lost_balancer = lb0
            t0.slots_lost_throttle = lt0
            t0.mispredicts = mis0
            t0.stall_until = su0
            t0.pos = pos0
        if t1 is not None:
            t1.owned_slots = own1
            t1.gct_held = gh1
            t1.retired = ret1
            t1.decoded = dec1
            t1.groups_dispatched = grp1
            t1.operand_wait_cycles = opw1
            t1.fu_wait_cycles = fuw1
            t1.wasted_slots = ws1
            t1.slots_lost_gct = lg1
            t1.slots_lost_stall = ls1
            t1.slots_lost_balancer = lb1
            t1.slots_lost_throttle = lt1
            t1.mispredicts = mis1
            t1.stall_until = su1
            t1.pos = pos1
        self._gct_used = gct_used
        self._cycle = now
        return cycles
