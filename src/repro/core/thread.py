"""Per-hardware-thread state of the SMT core."""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.isa.registers import NUM_REGS
from repro.isa.trace import TraceSource
from repro.priority.levels import PrivilegeLevel


class InflightGroup(NamedTuple):
    """One dispatched group occupying a GCT entry.

    ``completion`` is the cycle the group's last instruction finishes;
    ``rep_done`` marks the group that ends a workload repetition;
    ``start_pos``/``rep_index`` allow a balancer flush to rewind decode
    to the start of a squashed group.

    A named *tuple* rather than a slotted class: the step loops append
    millions of these, and a plain tuple display is several times
    cheaper than any Python-level ``__init__``.  The hot paths build
    anonymous 5-tuples in this field order and read by index; the named
    accessors exist for tests and inspection.
    """

    completion: int
    count: int
    rep_done: bool
    start_pos: int
    rep_index: int


class HardwareThread:
    """Decode/execution state of one SMT context."""

    def __init__(self, thread_id: int, source: TraceSource,
                 privilege: PrivilegeLevel = PrivilegeLevel.USER):
        self.thread_id = thread_id
        self.source = source
        self.privilege = privilege

        self.rep_index = 0
        self.trace = list(source.repetition(0))
        if not self.trace:
            raise ValueError(f"{source.name}: empty repetition trace")
        self.pos = 0
        self.finished = False

        # Scoreboard: completion time of the latest writer per register.
        self.reg_ready = [0] * NUM_REGS

        # In-flight groups (each holds one shared-GCT entry).
        self.inflight: deque[InflightGroup] = deque()
        self.gct_held = 0

        # Front-end blocking state.
        self.stall_until = 0          # branch redirect / flush penalty
        self.balancer_stalled = False
        self.throttled = False
        self.gated = False            # repetition gate (pipeline sync)

        # Counters.  ``wasted_slots`` aggregates the per-cause PMU
        # buckets below it (stall + balancer + throttle + other); the
        # slot identity owned == dispatched + wasted + lost_gct holds
        # at every cycle and backs the exact CPI-stack decomposition.
        self.owned_slots = 0
        self.wasted_slots = 0
        self.slots_lost_gct = 0
        self.slots_lost_stall = 0      # redirect / flush-penalty wait
        self.slots_lost_balancer = 0   # balancer GCT-occupancy stall
        self.slots_lost_throttle = 0   # reduced decode duty-cycle
        self.slots_lost_other = 0      # defensive paths (empty group)
        self.decoded = 0
        self.retired = 0
        self.groups_dispatched = 0
        self.mispredicts = 0
        self.flushes = 0
        self.flushed_instructions = 0
        # Stall attribution accumulated at decode time: cycles a
        # dispatched instruction waited on source operands past the
        # front-end depth, and cycles it waited for a busy functional
        # unit past operand readiness.
        self.operand_wait_cycles = 0
        self.fu_wait_cycles = 0
        # Applied in-trace priority-change requests (PRIO_NOPs that
        # actually changed this thread's priority).
        self.priority_changes = 0

        # FAME accounting: completion cycle and cumulative retired
        # instruction count at the end of each complete repetition,
        # plus the cycle each repetition's first group decoded (used to
        # separate busy time from gate-wait time in pipelines).
        self.rep_end_times: list[int] = []
        self.rep_end_retired: list[int] = []
        self.rep_start_times: list[int] = []

        # Counters sampled at the last balancer window boundary.
        self.window_l2_misses = 0
        self.window_retired = 0

    @property
    def completed_repetitions(self) -> int:
        """Number of fully retired workload repetitions."""
        return len(self.rep_end_times)

    def advance_repetition(self) -> None:
        """Move decode to the next repetition of the workload.

        A source may end the workload by raising ``StopIteration`` or
        returning an empty sequence; the thread then stops decoding.
        """
        self.rep_index += 1
        try:
            nxt = self.source.repetition(self.rep_index)
        except StopIteration:
            nxt = ()
        trace = list(nxt)
        if not trace:
            self.finished = True
            self.trace = []
        else:
            self.trace = trace
        self.pos = 0

    def rewind(self, rep_index: int, pos: int) -> None:
        """Rewind decode to ``(rep_index, pos)`` after a balancer flush."""
        if rep_index != self.rep_index:
            self.rep_index = rep_index
            self.trace = list(self.source.repetition(rep_index))
            self.finished = False
        self.pos = pos

    def __repr__(self) -> str:
        return (f"HardwareThread({self.thread_id}, {self.source.name!r}, "
                f"rep={self.rep_index}, pos={self.pos})")
