"""Dynamic hardware resource balancing (paper section 3.1).

POWER5 monitors the shared resources and throttles a thread that is
"potentially blocking the other thread's execution".  Three mechanisms:

- **stall**: stop decoding the offending thread until the congestion
  clears (triggered by GCT over-occupancy);
- **flush**: squash the offending thread's not-yet-dispatched
  instructions and stall its decode (triggered by GCT over-occupancy
  while the thread is itself blocked on a long-latency miss);
- **throttle**: temporarily reduce the offending thread's decode rate
  (triggered by an excessive L2/TLB miss rate in a monitoring window).

One modelling decision interacts with the paper's topic: the balancer
*defers to software-controlled priorities*.  A thread whose software
priority is strictly higher than its sibling's is never treated as an
offender -- otherwise the hardware would undo exactly the imbalance
the software asked for, and the paper's 20-42x starvation results
(Figures 3) could not occur while its balanced (4,4) baselines do.
At equal priorities the balancer is fully active, which is what keeps
the paper's default-priority baseline competitive (section 5.3).

The per-cycle stall checks are inlined in the core's step loop for
speed; this module holds the policy state, the window bookkeeping for
throttling and the flush decision, plus statistics.
"""

from __future__ import annotations

from repro.config import BalancerConfig


class BalancerStats:
    """Counters for each balancing mechanism, per thread."""

    __slots__ = ("stall_events", "stall_cycles", "flush_events",
                 "flushed_groups", "throttle_windows")

    def __init__(self) -> None:
        self.stall_events = [0, 0]
        self.stall_cycles = [0, 0]
        self.flush_events = [0, 0]
        self.flushed_groups = [0, 0]
        self.throttle_windows = [0, 0]

    def reset(self) -> None:
        """Zero all counters."""
        for attr in self.__slots__:
            setattr(self, attr, [0, 0])


class ResourceBalancer:
    """Policy state for the three POWER5 balancing mechanisms."""

    #: A group whose completion lies further than this many cycles in
    #: the future is considered blocked on a long-latency miss (the
    #: flush trigger condition).
    FLUSH_HORIZON = 40

    def __init__(self, config: BalancerConfig):
        self.config = config
        self.stats = BalancerStats()
        # Hysteresis: resume decode a little below the stall threshold.
        self.resume_threshold = max(1, config.gct_stall_threshold - 2)
        self.next_window = config.window_cycles

    def reset(self) -> None:
        """Reset statistics and window state."""
        self.stats.reset()
        self.next_window = self.config.window_cycles

    def is_offender(self, prio_self: int, prio_other: int) -> bool:
        """True when this thread may be balanced against.

        Software prioritization overrides automatic balancing: a thread
        explicitly favoured by software is never throttled back in
        favour of its lower-priority sibling.
        """
        return prio_self <= prio_other

    def should_flush(self, gct_held: int, oldest_completion: int,
                     now: int) -> bool:
        """Flush decision: hogging the GCT while blocked on a miss."""
        return (self.config.flush_enabled
                and gct_held >= self.config.gct_flush_threshold
                and oldest_completion > now + self.FLUSH_HORIZON)

    #: A thread is miss-dominated when its window L2 misses exceed this
    #: fraction of its retired instructions.  Keeps a high-IPC thread
    #: with incidental conflict misses from being throttled.
    MISS_RATE_THRESHOLD = 0.05

    def window_throttle(self, l2_miss_delta: int,
                        retired_delta: int) -> bool:
        """Throttle decision for the next monitoring window.

        Requires both an absolute L2-miss count over the window and a
        miss-dominated instruction stream.
        """
        return (self.config.throttle_enabled
                and l2_miss_delta >= self.config.l2_miss_threshold
                and l2_miss_delta > self.MISS_RATE_THRESHOLD
                * max(1, retired_delta))
