"""Validated configuration of the software-controlled prefetcher.

The knobs mirror the DSCR-style controls POWER machines expose to
software (and that Prat et al. retune per phase on POWER7): a
per-thread enable, the *depth* of each stream (how many lines ahead of
the demand stream the prefetcher runs), the *degree* (how many lines
one trigger fetches), and the stride-N detector's geometry (stream
table size and the number of consistent-stride misses required before
a stream starts issuing).

``PrefetchConfig`` rides inside :class:`repro.config.CoreConfig`, so
it reaches every layer that keys on the machine configuration --
trace/result caches, the service wire protocol, benchmark records.
The config is the *initial* setting: the patched kernel's
``/sys/kernel/smt_prefetch`` files retune the live knobs at run time,
exactly as priorities are retuned through ``smt_priority``.

This module deliberately imports nothing from the rest of the repro
(only stdlib): :mod:`repro.config.power5` embeds it, and the
prefetcher engine, the memory hierarchy and the service protocol all
reach it without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Bounds of the runtime-tunable knobs (shared with the sysfs writers
#: so configuration-time and run-time validation can never disagree).
MAX_DEPTH = 32
MAX_DEGREE = 8
MAX_STREAMS = 32


@dataclass(frozen=True)
class PrefetchConfig:
    """Stream/stride prefetcher knobs (default: fully disabled).

    With ``enabled == (False, False)`` the prefetcher never trains,
    never issues and never touches a counter, and the machine is
    bit-identical to one without a prefetcher at all --
    :meth:`repro.config.CoreConfig.fingerprint` relies on that to keep
    default-off fingerprints (and therefore every cache key) equal to
    the pre-prefetcher era's.
    """

    #: Per-hardware-thread enable (thread 0, thread 1).
    enabled: tuple[bool, bool] = (False, False)
    #: Lines ahead of the demand stream a stream may run (per stream).
    depth: int = 4
    #: Lines issued per confirmed-stream trigger.
    degree: int = 2
    #: Stream-table entries per thread.
    streams: int = 8
    #: Consistent-stride misses before a stream starts issuing.
    stride_matches: int = 2

    def __post_init__(self) -> None:
        # The wire protocol decodes JSON, where the tuple arrives as a
        # list of 0/1 -- normalise before validating.
        enabled = tuple(bool(e) for e in self.enabled)
        if len(enabled) != 2:
            raise ValueError(
                f"enabled must hold one flag per hardware thread, "
                f"got {self.enabled!r}")
        object.__setattr__(self, "enabled", enabled)
        if not 1 <= self.depth <= MAX_DEPTH:
            raise ValueError(
                f"prefetch depth must be in 1..{MAX_DEPTH}, "
                f"got {self.depth}")
        if not 1 <= self.degree <= MAX_DEGREE:
            raise ValueError(
                f"prefetch degree must be in 1..{MAX_DEGREE}, "
                f"got {self.degree}")
        if self.degree > self.depth:
            raise ValueError(
                f"prefetch degree ({self.degree}) cannot exceed depth "
                f"({self.depth}): one trigger may not run past the "
                f"stream's lookahead")
        if not 1 <= self.streams <= MAX_STREAMS:
            raise ValueError(
                f"prefetch streams must be in 1..{MAX_STREAMS}, "
                f"got {self.streams}")
        if self.stride_matches < 1:
            raise ValueError(
                f"stride_matches must be >= 1, got {self.stride_matches}")

    @property
    def enabled_any(self) -> bool:
        """Whether any hardware thread starts with prefetch on."""
        return self.enabled[0] or self.enabled[1]

    def replace(self, **changes) -> "PrefetchConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)
