"""The per-thread stream/stride prefetch engine.

:class:`StreamPrefetcher` lives inside
:class:`repro.memory.MemoryHierarchy` and acts between the L1D and the
lower levels: every demand L1 miss of an enabled thread trains a
stride-N detector over miss *line* addresses (L2-line granularity --
prefetched data fills into the L2, see DESIGN.md), and a confirmed
stream issues up to ``degree`` fills running up to ``depth`` lines
ahead of the demand pointer.  Fills are real memory traffic: each one
reserves a shared LMQ slot, crosses the chip's shared fabric/memory
channels when the core is chip-attached, and serializes over the DRAM
bus -- so an aggressive prefetcher visibly steals bandwidth from the
sibling thread, which is exactly the priority-interaction axis the
``prefetch`` experiment characterizes.

The engine is strictly *load-triggered*: it only runs inside
``MemoryHierarchy.load``/``load_complete`` calls, never on its own
cycle.  Both simulation engines (the object decode loop and the
compiled array kernels) funnel every load through those two methods,
so prefetch behaviour -- timing and all five ``PM_PREF_*`` counters --
is bit-identical across engines by construction, and the fast-forward
skip planner needs no new accounting (nothing prefetch-related ever
happens in a skipped cycle).

In-flight fills live in a per-thread ``{line: ready_cycle}`` map
rather than being installed into the L2 tags at issue time: a demand
miss that finds its line in flight completes as an L2-latency access
no earlier than the fill's ready time (fully hidden -> PM_LD_PREF_HIT,
partially hidden -> PM_PREF_LATE) and installs the line into the L2 at
that point.  Unconsumed fills past the buffer capacity are dropped
oldest-first and counted as PM_PREF_USELESS, as is a fill whose target
already sits in the L2/L3 -- the useless/late split is the signal the
``prefetch_adapt`` governor policy steers by.

Run-time control mirrors the priority interface: the patched kernel
registers ``/sys/kernel/smt_prefetch/thread<T>/{enable,depth,degree}``
files that call :meth:`set_enable`/:meth:`set_depth`/:meth:`set_degree`.
Every knob write bumps ``knob_gen`` so the steady-replay telescoper
can void a verified regime whose behaviour the write may have changed.
"""

from __future__ import annotations

from repro.prefetch.config import (
    MAX_DEGREE,
    MAX_DEPTH,
    PrefetchConfig,
)

#: In-flight fills held per thread before the oldest is dropped (and
#: counted useless).  Sized generously above depth x streams so drops
#: only happen when a stream was abandoned, not in steady state.
INFLIGHT_CAP = 64


class PrefetchStats:
    """Monotone per-thread counters behind the ``PM_PREF_*`` events."""

    __slots__ = ("allocs", "issues", "hits", "useless", "late")

    def __init__(self) -> None:
        self.allocs = [0, 0]
        self.issues = [0, 0]
        self.hits = [0, 0]
        self.useless = [0, 0]
        self.late = [0, 0]

    def reset(self) -> None:
        for pair in (self.allocs, self.issues, self.hits, self.useless,
                     self.late):
            pair[0] = pair[1] = 0


class StreamPrefetcher:
    """Software-controlled stream/stride prefetcher of one core."""

    __slots__ = ("config", "stats", "on", "depth", "degree", "knob_gen",
                 "_streams", "_inflight", "_prev", "_matches",
                 "_nstreams", "_line_bytes", "_mem_duration")

    def __init__(self, config: PrefetchConfig, line_bytes: int,
                 mem_duration: int):
        self.config = config
        self.stats = PrefetchStats()
        # Hot-path geometry/latency constants.
        self._line_bytes = line_bytes
        self._mem_duration = mem_duration
        self._matches = config.stride_matches
        self._nstreams = config.streams
        # Run-time knobs (sysfs-tunable), initialised from the config
        # by reset() below.
        self.on = [False, False]
        self.depth = [config.depth, config.depth]
        self.degree = [config.degree, config.degree]
        # Generation counter of knob writes (telescoper regime guard).
        self.knob_gen = 0
        self.reset()

    def reset(self) -> None:
        """Restore config knobs and clear all state and statistics."""
        cfg = self.config
        self.on = [cfg.enabled[0], cfg.enabled[1]]
        self.depth = [cfg.depth, cfg.depth]
        self.degree = [cfg.degree, cfg.degree]
        # Stream table entries are [last_line, stride, count, next_pf].
        self._streams: list[list[list[int]]] = [[], []]
        self._inflight: list[dict[int, int]] = [{}, {}]
        self._prev = [-1, -1]
        self.stats.reset()
        self.knob_gen += 1

    # -- run-time control (the smt_prefetch sysfs files) ---------------

    def set_enable(self, thread_id: int, value: bool) -> None:
        """Enable/disable one thread's prefetching at run time.

        Disabling kills the engine for that thread: its streams are
        forgotten and its in-flight fills are dropped (each counted
        ``PM_PREF_USELESS`` -- fetched but never consumed).
        """
        value = bool(value)
        if value == self.on[thread_id]:
            return
        self.on[thread_id] = value
        if not value:
            self._streams[thread_id] = []
            self._prev[thread_id] = -1
            dropped = len(self._inflight[thread_id])
            if dropped:
                self.stats.useless[thread_id] += dropped
                self._inflight[thread_id] = {}
        self.knob_gen += 1

    def set_depth(self, thread_id: int, depth: int) -> None:
        """Retune one thread's stream lookahead (1..MAX_DEPTH lines)."""
        if not 1 <= depth <= MAX_DEPTH:
            raise ValueError(
                f"prefetch depth must be in 1..{MAX_DEPTH}, got {depth}")
        if depth != self.depth[thread_id]:
            self.depth[thread_id] = depth
            self.knob_gen += 1

    def set_degree(self, thread_id: int, degree: int) -> None:
        """Retune one thread's fills-per-trigger (1..MAX_DEGREE)."""
        if not 1 <= degree <= MAX_DEGREE:
            raise ValueError(
                f"prefetch degree must be in 1..{MAX_DEGREE}, "
                f"got {degree}")
        if degree != self.degree[thread_id]:
            self.degree[thread_id] = degree
            self.knob_gen += 1

    # -- the demand-side hooks (called by MemoryHierarchy) -------------

    def consume(self, addr: int, thread_id: int) -> int:
        """Ready time of an in-flight fill covering ``addr``, or -1.

        A hit pops the fill: the caller services the load as an
        L2-latency access completing no earlier than the returned
        cycle, installs the line into the L2, and classifies the
        outcome (fully hidden vs late) against its own schedule via
        :meth:`account`.
        """
        inflight = self._inflight[thread_id]
        if not inflight:
            return -1
        return inflight.pop(addr // self._line_bytes, -1)

    def account(self, thread_id: int, late: bool) -> None:
        """Record the outcome of one consumed fill."""
        if late:
            self.stats.late[thread_id] += 1
        else:
            self.stats.hits[thread_id] += 1

    def observe(self, hier, addr: int, want: int, now: int,
                thread_id: int) -> None:
        """Train on one demand L1 miss; issue fills when confirmed.

        ``want`` is the demand access's post-TLB issue time -- fills
        triggered by this miss queue behind it.
        """
        line = addr // self._line_bytes
        prev = self._prev[thread_id]
        if line == prev:
            return  # same-line re-miss (TLB replay): no signal
        self._prev[thread_id] = line
        streams = self._streams[thread_id]
        for entry in streams:
            if entry[0] + entry[1] == line:
                # The stream predicted this miss: advance and run.
                # The confidence count saturates at the confirmation
                # threshold -- only the >= comparison below ever reads
                # it, and a bounded count keeps a steady-state stream
                # table exactly periodic (telescoper signature).
                entry[0] = line
                if entry[2] < self._matches:
                    entry[2] += 1
                if entry[2] >= self._matches:
                    self._run(hier, entry, line, want, now, thread_id)
                return
            if entry[0] == line:
                return  # re-miss on a stream head: no retrain
        if prev < 0:
            return
        stride = line - prev
        if stride == 0:
            return
        entry = [line, stride, 1, line + stride]
        if len(streams) < self._nstreams:
            streams.append(entry)
        else:
            # Replace the least-established stream (lowest confidence
            # count; first such slot on ties).  Victim choice is a
            # pure function of table content -- a rotating round-robin
            # pointer would add a hidden mod-N phase that multiplies
            # the machine's steady-state period by N and defeats the
            # telescoper's signature match.
            victim = min(range(self._nstreams),
                         key=lambda i: streams[i][2])
            streams[victim] = entry
        self.stats.allocs[thread_id] += 1
        if self._matches <= 1:
            self._run(hier, entry, line, want, now, thread_id)

    # -- fill issue ----------------------------------------------------

    def _run(self, hier, entry, line: int, want: int, now: int,
             thread_id: int) -> None:
        """Issue up to ``degree`` fills, up to ``depth`` lines ahead."""
        stride = entry[1]
        limit = line + stride * self.depth[thread_id]
        nxt = entry[3]
        # The stream pointer never trails the demand pointer.
        if (nxt - line) * stride <= 0:
            nxt = line + stride
        budget = self.degree[thread_id]
        while budget and (limit - nxt) * stride >= 0:
            self._fetch(hier, nxt, want, now, thread_id)
            budget -= 1
            nxt += stride
        entry[3] = nxt

    def _fetch(self, hier, line: int, want: int, now: int,
               thread_id: int) -> None:
        """One fill: LMQ slot, chip grants, DRAM bus, in-flight entry."""
        inflight = self._inflight[thread_id]
        if line in inflight:
            return  # already in flight: one fill per line
        addr = line * self._line_bytes
        if hier.l2.probe(addr) or hier.l3.probe(addr):
            # Already cached below L1: the fill would only burn
            # bandwidth.  The filter drops it but the wasted issue
            # slot is what PM_PREF_USELESS measures.
            self.stats.useless[thread_id] += 1
            return
        start = hier.lmq.acquire(want, now, thread_id,
                                 self._mem_duration)
        port = hier.chip_port
        if port is not None:
            start = port.l2_grant(start, thread_id)
            start = port.mem_grant(start, thread_id)
        complete = hier.dram.access(start, now, thread_id)
        hier.lmq.fill(complete)
        inflight[line] = complete
        self.stats.issues[thread_id] += 1
        if len(inflight) > INFLIGHT_CAP:
            # Drop the oldest unconsumed fill (deterministic:
            # insertion order), like a hardware prefetch buffer.
            del inflight[next(iter(inflight))]
            self.stats.useless[thread_id] += 1
