"""Software-controlled stream/stride prefetcher subsystem.

The public surface is small: :class:`PrefetchConfig` (the validated,
fingerprint-stable knob block embedded in ``CoreConfig``) and
:class:`StreamPrefetcher` (the load-triggered engine owned by
``MemoryHierarchy``).  See ``engine.py`` for the full behavioural
contract.
"""

from repro.prefetch.config import (
    MAX_DEGREE,
    MAX_DEPTH,
    MAX_STREAMS,
    PrefetchConfig,
)
from repro.prefetch.engine import (
    INFLIGHT_CAP,
    PrefetchStats,
    StreamPrefetcher,
)

__all__ = [
    "INFLIGHT_CAP",
    "MAX_DEGREE",
    "MAX_DEPTH",
    "MAX_STREAMS",
    "PrefetchConfig",
    "PrefetchStats",
    "StreamPrefetcher",
]
