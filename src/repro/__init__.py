"""Reproduction of *Software-Controlled Priority Characterization of
POWER5 Processor* (Boneti et al., ISCA 2008).

The package builds, from scratch, every system the paper depends on:

- :mod:`repro.isa` -- the instruction/trace model, including the
  ``or X,X,X`` priority nops of Table 1;
- :mod:`repro.memory` -- the shared L1D/L2/L3/DRAM hierarchy, TLB and
  load-miss queue;
- :mod:`repro.branch` -- the branch history table;
- :mod:`repro.priority` -- the eight software-controlled priority levels,
  the decode-slot formula ``R = 2**(|dP|+1)`` and the slot arbiter;
- :mod:`repro.core` -- the cycle-level two-way SMT core (GCT, FUs,
  dynamic hardware resource balancing);
- :mod:`repro.syskernel` -- the Linux-kernel priority behaviour and the
  paper's kernel patch / ``/sys`` interface;
- :mod:`repro.microbench` -- the 15 micro-benchmarks of Table 2;
- :mod:`repro.fame` -- the FAME measurement methodology;
- :mod:`repro.workloads` -- SPEC-like case-study workloads and the
  FFT -> LU software pipeline;
- :mod:`repro.governor` -- a closed-loop runtime that samples the PMU
  each epoch and retunes priorities online (pluggable policies);
- :mod:`repro.experiments` -- one harness per table/figure of the paper.

Quickstart::

    from repro import POWER5, SMTCore, make_microbenchmark
    from repro.fame import FameRunner

    runner = FameRunner(POWER5.small())
    result = runner.run_pair(make_microbenchmark("cpu_int"),
                             make_microbenchmark("ldint_mem"),
                             priorities=(6, 2))
    print(result.thread(0).ipc, result.total_ipc)
"""

from repro.config import POWER5, CoreConfig
from repro.core import CoreResult, SMTCore, ThreadResult
from repro.isa import Instruction, OpClass, Trace
from repro.microbench import MICROBENCHMARKS, make_microbenchmark
from repro.priority import (
    PriorityLevel,
    PrivilegeLevel,
    decode_slot_ratio,
    slot_share,
)

__version__ = "1.0.0"

__all__ = [
    "POWER5",
    "CoreConfig",
    "SMTCore",
    "CoreResult",
    "ThreadResult",
    "Instruction",
    "OpClass",
    "Trace",
    "MICROBENCHMARKS",
    "make_microbenchmark",
    "PriorityLevel",
    "PrivilegeLevel",
    "decode_slot_ratio",
    "slot_share",
    "__version__",
]
