"""Bench: regenerate Table 4 (FFT/LU software-pipeline times).

Paper: SMT at (4,4) beats running the stages serially in ST mode;
moderate prioritization of the FFT improves the iteration time further
(best at (6,4), 9.3% over default); (6,3) over-prioritizes, inverts
the imbalance (LU becomes the bottleneck) and loses.
"""

from repro.experiments import run_table4


def test_bench_table4(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_table4(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    st = report.data["st"]
    runs = {tuple(r["priorities"]): r for r in report.data["runs"]}

    # FFT is the long stage (paper: 1.86s vs 0.26s).
    assert st["fft"] > 3 * st["lu"]

    # SMT overlap beats serial single-thread execution.
    assert runs[(4, 4)]["iteration"] < st["iteration"]

    # Moderate prioritization is at least as good as the default...
    best = report.data["best"]
    assert best["priorities"] in ((5, 4), (6, 4))
    assert report.data["improvement_over_default"] >= 0.0

    # ...and (6,3) inverts the imbalance: LU becomes the bottleneck
    # and the iteration time worsens (paper: 2.33s vs 1.91s).
    assert runs[(6, 3)]["iteration"] > best["iteration"]
    assert runs[(6, 3)]["lu"] > 0.9 * runs[(6, 3)]["fft"]

    # LU's busy time grows monotonically as its share shrinks.
    lus = [runs[p]["lu"] for p in ((4, 4), (5, 4), (6, 4), (6, 3))]
    assert lus == sorted(lus)
