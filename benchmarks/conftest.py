"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the
paper.  A single :class:`ExperimentContext` is shared across the whole
benchmark session so that the Figure 2/3/4 sweeps reuse each other's
measurements (they are three views of one 400-run priority sweep).

Every benchmark writes its rendered report to
``benchmarks/results/<id>.txt`` so the regenerated rows/series are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.config import POWER5
from repro.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """The shared measurement context (small preset, FAME defaults)."""
    return ExperimentContext(config=POWER5.small(), min_repetitions=3,
                             max_cycles=2_500_000)


@pytest.fixture(scope="session")
def save_report():
    """Write an experiment report to benchmarks/results/<id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(report):
        path = RESULTS_DIR / f"{report.experiment_id}.txt"
        path.write_text(str(report) + "\n")
        return path
    return save
