"""Bench: simulation-engine throughput and suite wall-clock.

Measures simulated cycles per wall-clock second for representative
scenarios -- single-thread, SMT at (4,4) and (6,1), and the
memory-bound ``ldint_mem`` pair -- under both engines (per-cycle
reference vs event-driven fast-forward), then times the full
experiment suite serially and with worker processes.

Everything is written to ``BENCH_simcore.json`` at the repository root
so speedups across commits and machines are comparable.  Set
``BENCH_JOBS`` to pin the worker count (default: all cores).

The bench also measures the emulated PMU's cost: a PMU-off vs PMU-on
(counters + interval sampling) comparison, recorded under ``"pmu"``.
When the committed baseline file was produced on a comparable host
(same config fingerprint, Python version and core count), the bench
asserts the PMU-off engine has not regressed by more than 10% against
it -- the PMU's raw counters ride in the hot loop unconditionally, so
this is the guard that keeps them cheap.

The closed-loop governor gets the same treatment under ``"governor"``:
an equal-work governed vs ungoverned comparison (ipc_balance at the
default epoch, both arms stepping the same fixed horizon) gated at
``GOVERNOR_OVERHEAD_CEIL``, plus a governor-off gate against the
committed baseline so that runs which never attach a governor stay
exactly as fast as before the subsystem existed.

``"array_hooks"`` and ``"chip_array"`` gate horizon-bounded array
stepping: hooked (sampled / governed) array runs against their own
dense fallback, and a scheduled 2-core chip cell against the object
engine.  Both are bit-identity-checked in place -- the speedups must
be free.

``"array_engine"`` records the compiled-kernel engine's sustained
direct-step throughput against the object engine on the two CPU-bound
scenarios the array engine was built for.  These run fixed horizons
through ``core.step`` directly (no FAME convergence) because the
steady-state replay telescoper needs room to detect and verify the
machine-state period; the speedups are gated at ``ARRAY_FLOOR`` and,
on a comparable host, the array engine's absolute throughput is held
to ``ENGINE_FLOOR`` of the committed baseline.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time

from repro.config import POWER5
from repro.experiments import EXPERIMENTS, ExperimentContext, run_many
from repro.fame import FameRunner
from repro.microbench import make_microbenchmark
from repro.workloads.tracecache import clear_cache

ROOT = pathlib.Path(__file__).resolve().parent.parent
SECONDARY_BASE = (1 << 27) + 8192

#: Best-of-N repeats per scenario measurement (``BENCH_REPEATS``
#: overrides).  The per-scenario engine-floor gate below compares two
#: wall clocks on what may be a busy single-core host; the minimum of
#: a few runs is the closest observable to the noise-free cost.
REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))

#: Hard floor on per-scenario engine speedup (fast-forward vs
#: reference): the event-driven engine may be a hair slower on dense
#: dispatch phases it cannot skip, but anything below this means the
#: planner/gating overhead regressed.
ENGINE_FLOOR = 0.95

#: Hard floor on the array-engine speedup over the object engine for
#: the CPU-bound scenarios below.  The compiled kernels alone are
#: worth ~2x; the steady-state replay telescoper carries the rest, so
#: dropping under 3x means either the kernels or the telescoper's
#: period detection regressed.
ARRAY_FLOOR = 3.0

#: Ceiling on the governor's equal-work per-cycle overhead (wall per
#: simulated cycle, governed vs ungoverned, same horizon).  The hook
#: fires every ``GovernorConfig.epoch`` cycles and each firing is a
#: counter snapshot plus a policy decision; anything past this bound
#: means the hook machinery (or the regime voids its actuations
#: force) got expensive.
GOVERNOR_OVERHEAD_CEIL = 1.5

#: Floors on the telescoped-vs-dense speedup of hooked array runs
#: (the ``array_hooks`` section).  Sampled single-thread runs jump
#: nearly the whole sample interval (measured ~25x; gated loosely);
#: governed SMT runs re-verify after every trajectory-changing
#: actuation, so their floor is lower.
ARRAY_HOOKS_SAMPLED_FLOOR = 3.0
ARRAY_HOOKS_GOVERNED_FLOOR = 2.0

#: Floor on the array-vs-object speedup of the scheduled chip cell
#: (the ``chip_array`` section).  Requires core telescoping through
#: kernel timer ticks *and* the chip's adaptive bus-quiet quantum;
#: losing either drops the cell under the floor.
CHIP_ARRAY_FLOOR = 5.0

#: (label, (primary, secondary-or-None), direct-step horizon).  The
#: horizons give the telescoper room to detect + verify the period:
#: the ST loop repeats every 896 cycles, but the SMT pair's combined
#: machine-state period spans many repetitions of both traces, so its
#: horizon must be several times that before any cycles can be jumped.
ARRAY_SCENARIOS = (
    ("st_cpu_int", ("cpu_int", None), 600_000),
    ("smt_4_4_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), 1_500_000),
)

#: (label, (primary, secondary-or-None), priorities)
SCENARIOS = (
    ("st_cpu_int", ("cpu_int", None), (4, 4)),
    ("smt_4_4_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), (4, 4)),
    ("smt_6_1_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), (6, 1)),
    ("pair_ldint_mem", ("ldint_mem", "ldint_mem"), (4, 4)),
)


def _measure_scenario(config, names, priorities, repeats=None):
    """Best-of-N wall clock of one scenario under ``config``."""
    runner = FameRunner(config, min_repetitions=3, max_cycles=1_500_000)
    primary = make_microbenchmark(names[0], config)
    secondary = (None if names[1] is None
                 else make_microbenchmark(names[1], config,
                                          base_address=SECONDARY_BASE))

    def run():
        if secondary is None:
            start = time.perf_counter()
            fame = runner.run_single(primary)
        else:
            start = time.perf_counter()
            fame = runner.run_pair(primary, secondary,
                                   priorities=priorities)
        return time.perf_counter() - start, fame.result.cycles

    walls = []
    cycles = None
    for _ in range(repeats or REPEATS):
        wall, simulated = run()
        walls.append(wall)
        assert cycles is None or cycles == simulated  # deterministic
        cycles = simulated
    wall = min(walls)
    return {
        "simulated_cycles": cycles,
        "wall_s": round(wall, 4),
        "cycles_per_sec": round(cycles / wall) if wall else None,
    }


def _measure_array_scenario(config, names, horizon, repeats=None):
    """Best-of-N sustained direct-step throughput of one engine.

    Fixed horizon through ``core.step`` rather than a FAME run: the
    convergence runs above stop after a few repetitions, far short of
    the SMT machine-state period, so they exercise only the dense
    kernels.  Returns the measurement dict plus the per-thread retired
    counts, which the caller cross-checks between engines (the full
    bit-identity matrix lives in the differential test suite).
    """
    from repro.core import make_core

    walls = []
    retired = None
    for _ in range(repeats or REPEATS):
        core = make_core(config)
        sources = [make_microbenchmark(names[0], config)]
        if names[1] is not None:
            sources.append(make_microbenchmark(
                names[1], config, base_address=SECONDARY_BASE))
        core.load(sources, priorities=(4, 4))
        start = time.perf_counter()
        core.step(horizon)
        wall = time.perf_counter() - start
        walls.append(wall)
        got = tuple(th.retired for th in core._threads if th is not None)
        assert retired is None or retired == got  # deterministic
        retired = got
    wall = min(walls)
    return {
        "simulated_cycles": horizon,
        "wall_s": round(wall, 4),
        "cycles_per_sec": round(horizon / wall) if wall else None,
    }, retired


def _interleaved_best(runs, repeats=None):
    """Best-of-N wall clock per arm, arms interleaved round-robin.

    Interleaving makes every arm sample the same host-load epochs: on
    a busy single-core CI host, back-to-back blocks (N of arm A, then
    N of arm B) let one load spike land entirely on one arm and swing
    the ratio by +-20%, which is how overhead fractions used to come
    out negative.  The per-arm minimum of interleaved runs is the
    closest observable to the noise-free cost.  ``runs`` maps arm
    label -> zero-arg callable returning wall seconds.
    """
    best = {label: float("inf") for label in runs}
    for _ in range(repeats or REPEATS):
        for label, fn in runs.items():
            wall = fn()
            if wall < best[label]:
                best[label] = wall
    return best


def _measure_pmu_overhead(config, repeats=None):
    """PMU-off vs PMU-on wall clock for one SMT scenario (best-of-N).

    PMU-on includes interval sampling, the most expensive optional
    part; PMU-off is the exact configuration every uninstrumented run
    uses.  The PMU is a pure observer, so both arms simulate the same
    trajectory and the wall ratio is a true equal-work overhead.
    """
    from repro.pmu import Pmu

    def run(with_pmu: bool) -> float:
        runner = FameRunner(config, min_repetitions=3,
                            max_cycles=1_500_000)
        primary = make_microbenchmark("cpu_int", config)
        secondary = make_microbenchmark("ldint_l2", config,
                                        base_address=SECONDARY_BASE)
        pmu = Pmu(sample_period=4096) if with_pmu else None
        start = time.perf_counter()
        runner.run_pair(primary, secondary, priorities=(4, 4), pmu=pmu)
        return time.perf_counter() - start

    best = _interleaved_best({"off": lambda: run(False),
                              "on": lambda: run(True)}, repeats)
    off, on = best["off"], best["on"]
    return {
        "scenario": "smt_4_4_cpu_int_ldint_l2",
        "wall_off_s": round(off, 4),
        "wall_on_s": round(on, 4),
        "overhead_on_vs_off": round(on / off, 3) if off else None,
    }


def _measure_governor_overhead(config, repeats=None):
    """Equal-work governed vs ungoverned per-cycle cost (best-of-N).

    Both arms step the same loaded core over the same fixed horizon,
    so the wall ratio prices exactly what attaching the governor
    (ipc_balance at the default epoch) costs per simulated cycle: the
    epoch hook, the PMU snapshot, the policy decision, and any regime
    voids its priority actuations force.  The previous FAME-level
    on/off ratio was not an overhead: the governor changes priorities,
    which changes the convergence trajectory, and the recorded "3x
    overhead" was 2.7x more *simulated cycles*, not slower simulation.

    Both arms run the dense loop (``steady_replay`` off): the default
    epoch (500) is far below this pair's machine-state period, so a
    telescoped ungoverned arm against a jump-starved governed arm
    would price the workload's periodicity, not the machinery.  What
    governed *telescoping* is worth is gated separately under
    ``array_hooks`` at an epoch that leaves room to jump.
    """
    from repro.core import make_core
    from repro.governor import Governor, GovernorConfig, IpcBalancePolicy

    horizon = 1_500_000

    def run(with_governor: bool) -> float:
        core = make_core(config)
        primary = make_microbenchmark("cpu_int", config)
        secondary = make_microbenchmark("ldint_l2", config,
                                        base_address=SECONDARY_BASE)
        core.load([primary, secondary], priorities=(4, 4))
        core.steady_replay = False
        if with_governor:
            cfg = GovernorConfig()
            Governor(cfg, IpcBalancePolicy(cfg)).attach(core)
        start = time.perf_counter()
        core.step(horizon)
        return time.perf_counter() - start

    best = _interleaved_best({"off": lambda: run(False),
                              "on": lambda: run(True)}, repeats)
    off, on = best["off"], best["on"]
    return {
        "scenario": "smt_4_4_cpu_int_ldint_l2",
        "policy": "ipc_balance",
        "simulated_cycles": horizon,
        "wall_off_s": round(off, 4),
        "wall_on_s": round(on, 4),
        "overhead_on_vs_off": round(on / off, 3) if off else None,
    }


def _measure_array_hooks(config, repeats=None):
    """Telescoped vs dense array stepping with observers attached.

    Until horizon-bounded stepping, any periodic hook (sampler epoch,
    governor epoch, kernel timer) forced the array engine's dense
    loop for the whole run.  Both arms here run the *array* engine
    over the same fixed horizon; the dense arm only disables the
    steady-replay telescoper (``core.steady_replay = False``), which
    is exactly what every hooked run paid before jumps learned to
    clamp at the next hook boundary.  End state is asserted identical
    between the arms, so the speedup is free.
    """
    from repro.core import make_core
    from repro.governor import Governor, GovernorConfig, IpcBalancePolicy
    from repro.pmu.sampling import IntervalSampler

    def sampled(telescope: bool):
        core = make_core(config)
        core.load([make_microbenchmark("cpu_int", config)])
        core.steady_replay = telescope
        sampler = IntervalSampler(8192)
        sampler.attach(core)
        start = time.perf_counter()
        core.step(1_000_000)
        wall = time.perf_counter() - start
        return wall, (core._threads[0].retired, repr(sampler.samples))

    def governed(telescope: bool):
        core = make_core(config)
        core.load([make_microbenchmark("cpu_int", config),
                   make_microbenchmark("cpu_int", config,
                                       base_address=SECONDARY_BASE)],
                  priorities=(4, 4))
        core.steady_replay = telescope
        gcfg = GovernorConfig(epoch=32768)
        gov = Governor(gcfg, IpcBalancePolicy(gcfg))
        gov.attach(core)
        start = time.perf_counter()
        core.step(1_500_000)
        wall = time.perf_counter() - start
        sig = (tuple(th.retired for th in core._threads if th is not None),
               repr(gov.decision_log()))
        return wall, sig

    out = {}
    for label, arm, horizon, floor in (
            ("sampled_st_cpu_int", sampled, 1_000_000,
             ARRAY_HOOKS_SAMPLED_FLOOR),
            ("governed_smt_cpu_int_cpu_int", governed, 1_500_000,
             ARRAY_HOOKS_GOVERNED_FLOOR)):
        sigs = {}

        def timed(telescope, arm=arm, sigs=sigs):
            wall, sig = arm(telescope)
            prev = sigs.setdefault(telescope, sig)
            assert prev == sig  # deterministic per arm
            return wall

        best = _interleaved_best(
            {"telescoped": lambda: timed(True),
             "dense": lambda: timed(False)}, repeats)
        # Telescoping must not change a single observation.
        assert sigs[True] == sigs[False], label
        tele, dense = best["telescoped"], best["dense"]
        out[label] = {
            "simulated_cycles": horizon,
            "wall_telescoped_s": round(tele, 4),
            "wall_dense_s": round(dense, 4),
            "speedup": round(dense / tele, 3) if tele else None,
            "floor": floor,
        }
    return out


def _measure_chip_array(repeats=None):
    """Scheduled 2-core chip run: array engine vs object engine.

    The OS scheduler round-robins four cpu_int jobs over both cores
    with a large quantum; every scheduled core carries the patched
    kernel's timer hook, so before horizon-bounded stepping the array
    engine ran these cells dense.  Now each core telescopes between
    timer ticks and the chip hands bus-quiet spans over in one
    adaptive quantum.  The two engines must produce the identical
    ScheduleResult.
    """
    from repro.chip import Chip, ChipConfig
    from repro.sched import Job, OsScheduler, make_allocation_policy

    quantum = 131_072

    def run(engine: str):
        core_cfg = dataclasses.replace(POWER5.small(), engine=engine)
        chip = Chip(ChipConfig(n_cores=2, core=core_cfg))
        sched = OsScheduler(chip, make_allocation_policy("round_robin"),
                            quantum=quantum)
        jobs = [Job("cpu_int", repetitions=400) for _ in range(4)]
        start = time.perf_counter()
        result = sched.run(jobs)
        return time.perf_counter() - start, repr(result)

    sigs = {}

    def timed(engine):
        wall, sig = run(engine)
        prev = sigs.setdefault(engine, sig)
        assert prev == sig  # deterministic per engine
        return wall

    best = _interleaved_best({"array": lambda: timed("array"),
                              "object": lambda: timed("object")}, repeats)
    # Engine choice must not change a single scheduling decision,
    # job account or counter -- the speedup is free.
    assert sigs["array"] == sigs["object"]
    arr, obj = best["array"], best["object"]
    return {
        "scenario": "rr_2core_4x_cpu_int_reps400",
        "quantum": quantum,
        "wall_array_s": round(arr, 4),
        "wall_object_s": round(obj, 4),
        "speedup": round(obj / arr, 3) if arr else None,
        "floor": CHIP_ARRAY_FLOOR,
    }


def _load_baseline(path):
    """The committed BENCH_simcore.json, if present and parseable."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _comparable(prior, payload) -> bool:
    """True when the baseline came from an equivalent host + config."""
    if not prior:
        return False
    return all(prior.get(k) == payload[k]
               for k in ("config_fingerprint", "python", "cpu_count"))


def _measure_suite(config, jobs):
    clear_cache()
    ctx = ExperimentContext(config=config, min_repetitions=3,
                            max_cycles=2_500_000, jobs=jobs)
    start = time.perf_counter()
    run_many(list(EXPERIMENTS), ctx)  # planner path, like the CLI
    wall = time.perf_counter() - start
    return {"wall_s": round(wall, 2), "jobs": jobs,
            "cells": ctx.cached_runs()}


def test_bench_perf_writes_simcore_json():
    fast_cfg = POWER5.small()
    # The fast-forward vs reference sections predate the array engine
    # and measure the FAME-level event-driven machinery; pin them to
    # the object engine so the ratio keeps meaning (under the array
    # engine the reference run telescopes while fast-forward's
    # rep-gate forces dense stepping, inverting the comparison).  The
    # array engine's own numbers live in the "array_engine" section.
    legacy_fast = dataclasses.replace(fast_cfg, engine="object")
    legacy_ref = dataclasses.replace(legacy_fast, fast_forward=False)
    jobs = int(os.environ.get("BENCH_JOBS", "0")) or (os.cpu_count() or 1)

    scenarios = {}
    for label, names, priorities in SCENARIOS:
        # Interleave the two arms (see _interleaved_best) so host-load
        # spikes bias both engines alike instead of flapping the gate.
        fast = ref = None
        for _ in range(REPEATS):
            f = _measure_scenario(legacy_fast, names, priorities,
                                  repeats=1)
            r = _measure_scenario(legacy_ref, names, priorities,
                                  repeats=1)
            if fast is None or f["wall_s"] < fast["wall_s"]:
                fast = f
            if ref is None or r["wall_s"] < ref["wall_s"]:
                ref = r
        # Both engines must simulate the exact same number of cycles --
        # anything else means the fast path changed behaviour.
        assert fast["simulated_cycles"] == ref["simulated_cycles"], label
        scenarios[label] = {
            "fast_forward": fast,
            "reference": ref,
            "speedup": round(ref["wall_s"] / fast["wall_s"], 3)
            if fast["wall_s"] else None,
        }

    suite_ref = _measure_suite(legacy_ref, jobs=1)
    suite_fast_serial = _measure_suite(fast_cfg, jobs=1)
    suite_fast_jobs = _measure_suite(fast_cfg, jobs=jobs)
    suite = {
        "reference_serial": suite_ref,
        "fast_forward_serial": suite_fast_serial,
        "fast_forward_jobs": suite_fast_jobs,
        "speedup_engine": round(
            suite_ref["wall_s"] / suite_fast_serial["wall_s"], 3),
        "speedup_total": round(
            suite_ref["wall_s"] / suite_fast_jobs["wall_s"], 3),
    }

    array_scenarios = {}
    for label, names, horizon in ARRAY_SCENARIOS:
        arr = obj = None
        arr_retired = obj_retired = None
        for _ in range(REPEATS):
            a, a_ret = _measure_array_scenario(fast_cfg, names, horizon,
                                               repeats=1)
            o, o_ret = _measure_array_scenario(legacy_fast, names,
                                               horizon, repeats=1)
            assert arr_retired is None or arr_retired == a_ret, label
            assert obj_retired is None or obj_retired == o_ret, label
            arr_retired, obj_retired = a_ret, o_ret
            if arr is None or a["wall_s"] < arr["wall_s"]:
                arr = a
            if obj is None or o["wall_s"] < obj["wall_s"]:
                obj = o
        # Same instructions retired per thread at the same horizon --
        # the cheap cross-engine check worth repeating in the bench.
        assert arr_retired == obj_retired, label
        array_scenarios[label] = {
            "array": arr,
            "object": obj,
            "speedup": round(obj["wall_s"] / arr["wall_s"], 3)
            if arr["wall_s"] else None,
        }

    pmu_overhead = _measure_pmu_overhead(fast_cfg)
    governor_overhead = _measure_governor_overhead(fast_cfg)
    array_hooks = _measure_array_hooks(fast_cfg)
    chip_array = _measure_chip_array()

    payload = {
        "config_fingerprint": fast_cfg.fingerprint(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "bench_jobs": jobs,
        "scenarios": scenarios,
        "suite": suite,
        "array_engine": {"floor": ARRAY_FLOOR,
                         "scenarios": array_scenarios},
        "array_hooks": array_hooks,
        "chip_array": chip_array,
        "pmu": pmu_overhead,
        "governor": governor_overhead,
    }
    out = ROOT / "BENCH_simcore.json"
    prior = _load_baseline(out)
    gate = _comparable(prior, payload)
    payload["pmu"]["baseline_gate_ran"] = gate
    payload["governor"]["baseline_gate_ran"] = gate
    payload["array_engine"]["baseline_gate_ran"] = gate
    if prior and "simcache" in prior:
        # The result-cache bench (test_bench_simcache.py) owns this
        # section via read-modify-write; keep it across rewrites.
        payload["simcache"] = prior["simcache"]
    out.write_text(json.dumps(payload, indent=2) + "\n")

    # Sanity floor, deliberately loose: on a single, possibly noisy
    # core the parallel run may not win, but the suite must complete
    # under both engines and the engines must agree cycle-for-cycle.
    assert suite["speedup_engine"] > 0.5
    assert all(s["speedup"] is not None for s in scenarios.values())

    # Per-scenario engine floor: the fast-forward engine must stay
    # within 5% of the reference even on scenarios it cannot skip.
    # Best-of-N keeps most host noise out, but these scenarios finish
    # in under ~150ms where repeated idle-host runs still swing the
    # raw ratio by +-20%; the same absolute slack the PMU gate uses
    # keeps them out of timer noise while a real slowdown (2x on any
    # scenario) still trips the gate.
    for label, s in scenarios.items():
        fast_wall = s["fast_forward"]["wall_s"]
        ref_wall = s["reference"]["wall_s"]
        assert fast_wall <= ref_wall / ENGINE_FLOOR + 0.05, (
            f"{label}: fast-forward engine at {s['speedup']:.3f}x of "
            f"reference ({fast_wall:.4f}s vs {ref_wall:.4f}s), below "
            f"the {ENGINE_FLOOR} floor")

    # Array-engine speedup gate: the compiled kernels plus the
    # steady-state replay telescoper must beat the object engine by at
    # least ARRAY_FLOOR on both CPU-bound scenarios.  Engine-relative,
    # so it runs on every host regardless of the baseline.
    for label, s in array_scenarios.items():
        assert s["speedup"] is not None and s["speedup"] >= ARRAY_FLOOR, (
            f"{label}: array engine at {s['speedup']}x of the object "
            f"engine, below the {ARRAY_FLOOR} floor")

    # Hooked-telescoping gates, engine-relative so they run on every
    # host: sampled and governed array runs must beat their own dense
    # fallback by the section floors, or horizon-bounded stepping
    # regressed back to dense-on-hooks.
    for label, s in array_hooks.items():
        assert s["speedup"] is not None and s["speedup"] >= s["floor"], (
            f"array_hooks/{label}: telescoped at {s['speedup']}x of "
            f"dense, below the {s['floor']} floor")

    # Chip-array gate: the scheduled 2-core cell must keep its
    # telescoped win over the object engine (needs hook-clamped core
    # jumps, zero-grant port eligibility and the adaptive bus-quiet
    # quantum all working together).
    assert (chip_array["speedup"] is not None
            and chip_array["speedup"] >= CHIP_ARRAY_FLOOR), (
        f"chip_array: array engine at {chip_array['speedup']}x of the "
        f"object engine, below the {CHIP_ARRAY_FLOOR} floor")

    # Governor equal-work overhead gate: same-horizon governed vs
    # ungoverned stepping.  The small absolute slack keeps a ~100ms
    # telescoped wall out of timer noise; a real regression (hooks
    # forcing dense again would read as ~3x here) still trips it.
    assert (governor_overhead["wall_on_s"]
            <= governor_overhead["wall_off_s"] * GOVERNOR_OVERHEAD_CEIL
            + 0.05), (
        f"governor: equal-work overhead "
        f"{governor_overhead['overhead_on_vs_off']}x exceeds the "
        f"{GOVERNOR_OVERHEAD_CEIL} ceiling")

    # Array-engine absolute-throughput gate: on a comparable host the
    # array engine must also hold ENGINE_FLOOR of its own committed
    # wall clock -- the relative gate above would miss both engines
    # slowing down together.  Compared in wall terms with the same
    # absolute slack as every other sub-100ms gate: the telescoped ST
    # wall is ~13ms, where a 1-2ms scheduler blip reads as a 10% ratio
    # swing, while a real regression (telescoper dropping to dense)
    # is two orders of magnitude.
    if gate:
        prior_array = prior.get("array_engine", {}).get("scenarios", {})
        for label, s in array_scenarios.items():
            base = prior_array.get(label, {}).get("array", {})
            base_wall = base.get("wall_s")
            if base_wall is None and base.get("cycles_per_sec"):
                base_wall = (s["array"]["simulated_cycles"]
                             / base["cycles_per_sec"])
            if base_wall:
                measured = s["array"]["wall_s"]
                assert measured <= base_wall / ENGINE_FLOOR + 0.05, (
                    f"{label}: array engine at {measured:.4f}s vs "
                    f"baseline {base_wall:.4f}s (floor {ENGINE_FLOOR})")

    # PMU-off regression gate: with the PMU detached, the always-on
    # raw counters are the only cost the subsystem adds to the hot
    # loop, and it must stay within 10% of the committed baseline.
    # Only meaningful when the baseline ran on an equivalent host
    # (cross-machine wall-clock comparisons say nothing); a small
    # absolute slack keeps sub-100ms scenarios out of timer noise.
    if gate:
        prior_pmu = prior.get("pmu", {})
        base_off = prior_pmu.get("wall_off_s")
        if base_off is None:  # first baseline with a pmu section
            base_off = (prior["scenarios"]
                        ["smt_4_4_cpu_int_ldint_l2"]
                        ["fast_forward"]["wall_s"])
        measured = pmu_overhead["wall_off_s"]
        assert measured <= base_off * 1.10 + 0.05, (
            f"PMU-off run regressed: {measured:.4f}s vs baseline "
            f"{base_off:.4f}s (+10% budget)")

    # Governor-off regression gate, same shape: an ungoverned run
    # must not pay for the governor subsystem's existence.  The hook
    # list is empty and the sysfs interface untouched, so this should
    # be literally the pre-governor code path.  Comparable only when
    # the baseline measured the same quantity -- the section changed
    # from FAME convergence walls to equal-work fixed-horizon walls,
    # so a baseline without a matching ``simulated_cycles`` (an older
    # format) is skipped until the next baseline refresh.
    if gate:
        prior_gov = prior.get("governor", {})
        base_off = prior_gov.get("wall_off_s")
        if (base_off is not None
                and prior_gov.get("simulated_cycles")
                == governor_overhead["simulated_cycles"]):
            measured = governor_overhead["wall_off_s"]
            assert measured <= base_off * 1.10 + 0.05, (
                f"governor-off run regressed: {measured:.4f}s vs "
                f"baseline {base_off:.4f}s (+10% budget)")
