"""Bench: simulation-engine throughput and suite wall-clock.

Measures simulated cycles per wall-clock second for representative
scenarios -- single-thread, SMT at (4,4) and (6,1), and the
memory-bound ``ldint_mem`` pair -- under both engines (per-cycle
reference vs event-driven fast-forward), then times the full
experiment suite serially and with worker processes.

Everything is written to ``BENCH_simcore.json`` at the repository root
so speedups across commits and machines are comparable.  Set
``BENCH_JOBS`` to pin the worker count (default: all cores).

The bench also measures the emulated PMU's cost: a PMU-off vs PMU-on
(counters + interval sampling) comparison, recorded under ``"pmu"``.
When the committed baseline file was produced on a comparable host
(same config fingerprint, Python version and core count), the bench
asserts the PMU-off engine has not regressed by more than 10% against
it -- the PMU's raw counters ride in the hot loop unconditionally, so
this is the guard that keeps them cheap.

The closed-loop governor gets the same treatment under ``"governor"``:
a governor-off vs governor-on (ipc_balance at the default epoch)
comparison, plus a governor-off gate against the committed baseline so
that runs which never attach a governor stay exactly as fast as before
the subsystem existed.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time

from repro.config import POWER5
from repro.experiments import EXPERIMENTS, ExperimentContext, run_many
from repro.fame import FameRunner
from repro.microbench import make_microbenchmark
from repro.workloads.tracecache import clear_cache

ROOT = pathlib.Path(__file__).resolve().parent.parent
SECONDARY_BASE = (1 << 27) + 8192

#: Best-of-N repeats per scenario measurement (``BENCH_REPEATS``
#: overrides).  The per-scenario engine-floor gate below compares two
#: wall clocks on what may be a busy single-core host; the minimum of
#: a few runs is the closest observable to the noise-free cost.
REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))

#: Hard floor on per-scenario engine speedup (fast-forward vs
#: reference): the event-driven engine may be a hair slower on dense
#: dispatch phases it cannot skip, but anything below this means the
#: planner/gating overhead regressed.
ENGINE_FLOOR = 0.95

#: (label, (primary, secondary-or-None), priorities)
SCENARIOS = (
    ("st_cpu_int", ("cpu_int", None), (4, 4)),
    ("smt_4_4_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), (4, 4)),
    ("smt_6_1_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), (6, 1)),
    ("pair_ldint_mem", ("ldint_mem", "ldint_mem"), (4, 4)),
)


def _measure_scenario(config, names, priorities, repeats=None):
    """Best-of-N wall clock of one scenario under ``config``."""
    runner = FameRunner(config, min_repetitions=3, max_cycles=1_500_000)
    primary = make_microbenchmark(names[0], config)
    secondary = (None if names[1] is None
                 else make_microbenchmark(names[1], config,
                                          base_address=SECONDARY_BASE))

    def run():
        if secondary is None:
            start = time.perf_counter()
            fame = runner.run_single(primary)
        else:
            start = time.perf_counter()
            fame = runner.run_pair(primary, secondary,
                                   priorities=priorities)
        return time.perf_counter() - start, fame.result.cycles

    walls = []
    cycles = None
    for _ in range(repeats or REPEATS):
        wall, simulated = run()
        walls.append(wall)
        assert cycles is None or cycles == simulated  # deterministic
        cycles = simulated
    wall = min(walls)
    return {
        "simulated_cycles": cycles,
        "wall_s": round(wall, 4),
        "cycles_per_sec": round(cycles / wall) if wall else None,
    }


def _measure_pmu_overhead(config, repeats=3):
    """PMU-off vs PMU-on wall clock for one SMT scenario (best-of-N).

    PMU-on includes interval sampling, the most expensive optional
    part; PMU-off is the exact configuration every uninstrumented run
    uses.  Best-of-N suppresses scheduler noise on small scenarios.
    """
    from repro.pmu import Pmu

    def run(with_pmu: bool) -> float:
        runner = FameRunner(config, min_repetitions=3,
                            max_cycles=1_500_000)
        primary = make_microbenchmark("cpu_int", config)
        secondary = make_microbenchmark("ldint_l2", config,
                                        base_address=SECONDARY_BASE)
        pmu = Pmu(sample_period=4096) if with_pmu else None
        start = time.perf_counter()
        runner.run_pair(primary, secondary, priorities=(4, 4), pmu=pmu)
        return time.perf_counter() - start

    off = min(run(False) for _ in range(repeats))
    on = min(run(True) for _ in range(repeats))
    return {
        "scenario": "smt_4_4_cpu_int_ldint_l2",
        "wall_off_s": round(off, 4),
        "wall_on_s": round(on, 4),
        "overhead_on_vs_off": round(on / off, 3) if off else None,
    }


def _measure_governor_overhead(config, repeats=3):
    """Governor-off vs governor-on wall clock for one SMT scenario.

    Governor-on attaches an :class:`repro.governor.IpcBalancePolicy`
    at the default epoch -- PMU snapshot, policy decision and (when it
    moves) sysfs actuation every epoch.  Governor-off is the exact
    path every ungoverned run takes; the regression gate below holds
    it to the committed baseline, so closing the loop stays free for
    everyone not using it.
    """
    from repro.governor import Governor, GovernorConfig, IpcBalancePolicy

    def run(with_governor: bool) -> float:
        runner = FameRunner(config, min_repetitions=3,
                            max_cycles=1_500_000)
        primary = make_microbenchmark("cpu_int", config)
        secondary = make_microbenchmark("ldint_l2", config,
                                        base_address=SECONDARY_BASE)
        governor = None
        if with_governor:
            cfg = GovernorConfig()
            governor = Governor(cfg, IpcBalancePolicy(cfg))
        start = time.perf_counter()
        runner.run_pair(primary, secondary, priorities=(4, 4),
                        governor=governor)
        return time.perf_counter() - start

    off = min(run(False) for _ in range(repeats))
    on = min(run(True) for _ in range(repeats))
    return {
        "scenario": "smt_4_4_cpu_int_ldint_l2",
        "policy": "ipc_balance",
        "wall_off_s": round(off, 4),
        "wall_on_s": round(on, 4),
        "overhead_on_vs_off": round(on / off, 3) if off else None,
    }


def _load_baseline(path):
    """The committed BENCH_simcore.json, if present and parseable."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _comparable(prior, payload) -> bool:
    """True when the baseline came from an equivalent host + config."""
    if not prior:
        return False
    return all(prior.get(k) == payload[k]
               for k in ("config_fingerprint", "python", "cpu_count"))


def _measure_suite(config, jobs):
    clear_cache()
    ctx = ExperimentContext(config=config, min_repetitions=3,
                            max_cycles=2_500_000, jobs=jobs)
    start = time.perf_counter()
    run_many(list(EXPERIMENTS), ctx)  # planner path, like the CLI
    wall = time.perf_counter() - start
    return {"wall_s": round(wall, 2), "jobs": jobs,
            "cells": ctx.cached_runs()}


def test_bench_perf_writes_simcore_json():
    fast_cfg = POWER5.small()
    ref_cfg = dataclasses.replace(fast_cfg, fast_forward=False)
    jobs = int(os.environ.get("BENCH_JOBS", "0")) or (os.cpu_count() or 1)

    scenarios = {}
    for label, names, priorities in SCENARIOS:
        fast = _measure_scenario(fast_cfg, names, priorities)
        ref = _measure_scenario(ref_cfg, names, priorities)
        # Both engines must simulate the exact same number of cycles --
        # anything else means the fast path changed behaviour.
        assert fast["simulated_cycles"] == ref["simulated_cycles"], label
        scenarios[label] = {
            "fast_forward": fast,
            "reference": ref,
            "speedup": round(ref["wall_s"] / fast["wall_s"], 3)
            if fast["wall_s"] else None,
        }

    suite_ref = _measure_suite(ref_cfg, jobs=1)
    suite_fast_serial = _measure_suite(fast_cfg, jobs=1)
    suite_fast_jobs = _measure_suite(fast_cfg, jobs=jobs)
    suite = {
        "reference_serial": suite_ref,
        "fast_forward_serial": suite_fast_serial,
        "fast_forward_jobs": suite_fast_jobs,
        "speedup_engine": round(
            suite_ref["wall_s"] / suite_fast_serial["wall_s"], 3),
        "speedup_total": round(
            suite_ref["wall_s"] / suite_fast_jobs["wall_s"], 3),
    }

    pmu_overhead = _measure_pmu_overhead(fast_cfg)
    governor_overhead = _measure_governor_overhead(fast_cfg)

    payload = {
        "config_fingerprint": fast_cfg.fingerprint(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "bench_jobs": jobs,
        "scenarios": scenarios,
        "suite": suite,
        "pmu": pmu_overhead,
        "governor": governor_overhead,
    }
    out = ROOT / "BENCH_simcore.json"
    prior = _load_baseline(out)
    gate = _comparable(prior, payload)
    payload["pmu"]["baseline_gate_ran"] = gate
    payload["governor"]["baseline_gate_ran"] = gate
    if prior and "simcache" in prior:
        # The result-cache bench (test_bench_simcache.py) owns this
        # section via read-modify-write; keep it across rewrites.
        payload["simcache"] = prior["simcache"]
    out.write_text(json.dumps(payload, indent=2) + "\n")

    # Sanity floor, deliberately loose: on a single, possibly noisy
    # core the parallel run may not win, but the suite must complete
    # under both engines and the engines must agree cycle-for-cycle.
    assert suite["speedup_engine"] > 0.5
    assert all(s["speedup"] is not None for s in scenarios.values())

    # Per-scenario engine floor: the fast-forward engine must stay
    # within 5% of the reference even on scenarios it cannot skip
    # (best-of-N on both sides keeps host noise out of the ratio).
    for label, s in scenarios.items():
        assert s["speedup"] >= ENGINE_FLOOR, (
            f"{label}: fast-forward engine at {s['speedup']:.3f}x of "
            f"reference, below the {ENGINE_FLOOR} floor")

    # PMU-off regression gate: with the PMU detached, the always-on
    # raw counters are the only cost the subsystem adds to the hot
    # loop, and it must stay within 10% of the committed baseline.
    # Only meaningful when the baseline ran on an equivalent host
    # (cross-machine wall-clock comparisons say nothing); a small
    # absolute slack keeps sub-100ms scenarios out of timer noise.
    if gate:
        prior_pmu = prior.get("pmu", {})
        base_off = prior_pmu.get("wall_off_s")
        if base_off is None:  # first baseline with a pmu section
            base_off = (prior["scenarios"]
                        ["smt_4_4_cpu_int_ldint_l2"]
                        ["fast_forward"]["wall_s"])
        measured = pmu_overhead["wall_off_s"]
        assert measured <= base_off * 1.10 + 0.05, (
            f"PMU-off run regressed: {measured:.4f}s vs baseline "
            f"{base_off:.4f}s (+10% budget)")

    # Governor-off regression gate, same shape: an ungoverned run
    # must not pay for the governor subsystem's existence.  The hook
    # list is empty and the sysfs interface untouched, so this should
    # be literally the pre-governor code path.
    if gate:
        base_off = prior.get("governor", {}).get("wall_off_s")
        if base_off is None:  # first baseline with a governor section
            base_off = prior.get("pmu", {}).get("wall_off_s") or (
                prior["scenarios"]["smt_4_4_cpu_int_ldint_l2"]
                ["fast_forward"]["wall_s"])
        measured = governor_overhead["wall_off_s"]
        assert measured <= base_off * 1.10 + 0.05, (
            f"governor-off run regressed: {measured:.4f}s vs baseline "
            f"{base_off:.4f}s (+10% budget)")
