"""Bench: simulation-engine throughput and suite wall-clock.

Measures simulated cycles per wall-clock second for representative
scenarios -- single-thread, SMT at (4,4) and (6,1), and the
memory-bound ``ldint_mem`` pair -- under both engines (per-cycle
reference vs event-driven fast-forward), then times the full
experiment suite serially and with worker processes.

Everything is written to ``BENCH_simcore.json`` at the repository root
so speedups across commits and machines are comparable.  Set
``BENCH_JOBS`` to pin the worker count (default: all cores).

The bench also measures the emulated PMU's cost: a PMU-off vs PMU-on
(counters + interval sampling) comparison, recorded under ``"pmu"``.
When the committed baseline file was produced on a comparable host
(same config fingerprint, Python version and core count), the bench
asserts the PMU-off engine has not regressed by more than 10% against
it -- the PMU's raw counters ride in the hot loop unconditionally, so
this is the guard that keeps them cheap.

The closed-loop governor gets the same treatment under ``"governor"``:
a governor-off vs governor-on (ipc_balance at the default epoch)
comparison, plus a governor-off gate against the committed baseline so
that runs which never attach a governor stay exactly as fast as before
the subsystem existed.

``"array_engine"`` records the compiled-kernel engine's sustained
direct-step throughput against the object engine on the two CPU-bound
scenarios the array engine was built for.  These run fixed horizons
through ``core.step`` directly (no FAME convergence) because the
steady-state replay telescoper needs room to detect and verify the
machine-state period; the speedups are gated at ``ARRAY_FLOOR`` and,
on a comparable host, the array engine's absolute throughput is held
to ``ENGINE_FLOOR`` of the committed baseline.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time

from repro.config import POWER5
from repro.experiments import EXPERIMENTS, ExperimentContext, run_many
from repro.fame import FameRunner
from repro.microbench import make_microbenchmark
from repro.workloads.tracecache import clear_cache

ROOT = pathlib.Path(__file__).resolve().parent.parent
SECONDARY_BASE = (1 << 27) + 8192

#: Best-of-N repeats per scenario measurement (``BENCH_REPEATS``
#: overrides).  The per-scenario engine-floor gate below compares two
#: wall clocks on what may be a busy single-core host; the minimum of
#: a few runs is the closest observable to the noise-free cost.
REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))

#: Hard floor on per-scenario engine speedup (fast-forward vs
#: reference): the event-driven engine may be a hair slower on dense
#: dispatch phases it cannot skip, but anything below this means the
#: planner/gating overhead regressed.
ENGINE_FLOOR = 0.95

#: Hard floor on the array-engine speedup over the object engine for
#: the CPU-bound scenarios below.  The compiled kernels alone are
#: worth ~2x; the steady-state replay telescoper carries the rest, so
#: dropping under 3x means either the kernels or the telescoper's
#: period detection regressed.
ARRAY_FLOOR = 3.0

#: (label, (primary, secondary-or-None), direct-step horizon).  The
#: horizons give the telescoper room to detect + verify the period:
#: the ST loop repeats every 896 cycles, but the SMT pair's combined
#: machine-state period spans many repetitions of both traces, so its
#: horizon must be several times that before any cycles can be jumped.
ARRAY_SCENARIOS = (
    ("st_cpu_int", ("cpu_int", None), 600_000),
    ("smt_4_4_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), 1_500_000),
)

#: (label, (primary, secondary-or-None), priorities)
SCENARIOS = (
    ("st_cpu_int", ("cpu_int", None), (4, 4)),
    ("smt_4_4_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), (4, 4)),
    ("smt_6_1_cpu_int_ldint_l2", ("cpu_int", "ldint_l2"), (6, 1)),
    ("pair_ldint_mem", ("ldint_mem", "ldint_mem"), (4, 4)),
)


def _measure_scenario(config, names, priorities, repeats=None):
    """Best-of-N wall clock of one scenario under ``config``."""
    runner = FameRunner(config, min_repetitions=3, max_cycles=1_500_000)
    primary = make_microbenchmark(names[0], config)
    secondary = (None if names[1] is None
                 else make_microbenchmark(names[1], config,
                                          base_address=SECONDARY_BASE))

    def run():
        if secondary is None:
            start = time.perf_counter()
            fame = runner.run_single(primary)
        else:
            start = time.perf_counter()
            fame = runner.run_pair(primary, secondary,
                                   priorities=priorities)
        return time.perf_counter() - start, fame.result.cycles

    walls = []
    cycles = None
    for _ in range(repeats or REPEATS):
        wall, simulated = run()
        walls.append(wall)
        assert cycles is None or cycles == simulated  # deterministic
        cycles = simulated
    wall = min(walls)
    return {
        "simulated_cycles": cycles,
        "wall_s": round(wall, 4),
        "cycles_per_sec": round(cycles / wall) if wall else None,
    }


def _measure_array_scenario(config, names, horizon, repeats=None):
    """Best-of-N sustained direct-step throughput of one engine.

    Fixed horizon through ``core.step`` rather than a FAME run: the
    convergence runs above stop after a few repetitions, far short of
    the SMT machine-state period, so they exercise only the dense
    kernels.  Returns the measurement dict plus the per-thread retired
    counts, which the caller cross-checks between engines (the full
    bit-identity matrix lives in the differential test suite).
    """
    from repro.core import make_core

    walls = []
    retired = None
    for _ in range(repeats or REPEATS):
        core = make_core(config)
        sources = [make_microbenchmark(names[0], config)]
        if names[1] is not None:
            sources.append(make_microbenchmark(
                names[1], config, base_address=SECONDARY_BASE))
        core.load(sources, priorities=(4, 4))
        start = time.perf_counter()
        core.step(horizon)
        wall = time.perf_counter() - start
        walls.append(wall)
        got = tuple(th.retired for th in core._threads if th is not None)
        assert retired is None or retired == got  # deterministic
        retired = got
    wall = min(walls)
    return {
        "simulated_cycles": horizon,
        "wall_s": round(wall, 4),
        "cycles_per_sec": round(horizon / wall) if wall else None,
    }, retired


def _measure_pmu_overhead(config, repeats=3):
    """PMU-off vs PMU-on wall clock for one SMT scenario (best-of-N).

    PMU-on includes interval sampling, the most expensive optional
    part; PMU-off is the exact configuration every uninstrumented run
    uses.  Best-of-N suppresses scheduler noise on small scenarios.
    """
    from repro.pmu import Pmu

    def run(with_pmu: bool) -> float:
        runner = FameRunner(config, min_repetitions=3,
                            max_cycles=1_500_000)
        primary = make_microbenchmark("cpu_int", config)
        secondary = make_microbenchmark("ldint_l2", config,
                                        base_address=SECONDARY_BASE)
        pmu = Pmu(sample_period=4096) if with_pmu else None
        start = time.perf_counter()
        runner.run_pair(primary, secondary, priorities=(4, 4), pmu=pmu)
        return time.perf_counter() - start

    off = min(run(False) for _ in range(repeats))
    on = min(run(True) for _ in range(repeats))
    return {
        "scenario": "smt_4_4_cpu_int_ldint_l2",
        "wall_off_s": round(off, 4),
        "wall_on_s": round(on, 4),
        "overhead_on_vs_off": round(on / off, 3) if off else None,
    }


def _measure_governor_overhead(config, repeats=3):
    """Governor-off vs governor-on wall clock for one SMT scenario.

    Governor-on attaches an :class:`repro.governor.IpcBalancePolicy`
    at the default epoch -- PMU snapshot, policy decision and (when it
    moves) sysfs actuation every epoch.  Governor-off is the exact
    path every ungoverned run takes; the regression gate below holds
    it to the committed baseline, so closing the loop stays free for
    everyone not using it.
    """
    from repro.governor import Governor, GovernorConfig, IpcBalancePolicy

    def run(with_governor: bool) -> float:
        runner = FameRunner(config, min_repetitions=3,
                            max_cycles=1_500_000)
        primary = make_microbenchmark("cpu_int", config)
        secondary = make_microbenchmark("ldint_l2", config,
                                        base_address=SECONDARY_BASE)
        governor = None
        if with_governor:
            cfg = GovernorConfig()
            governor = Governor(cfg, IpcBalancePolicy(cfg))
        start = time.perf_counter()
        runner.run_pair(primary, secondary, priorities=(4, 4),
                        governor=governor)
        return time.perf_counter() - start

    off = min(run(False) for _ in range(repeats))
    on = min(run(True) for _ in range(repeats))
    return {
        "scenario": "smt_4_4_cpu_int_ldint_l2",
        "policy": "ipc_balance",
        "wall_off_s": round(off, 4),
        "wall_on_s": round(on, 4),
        "overhead_on_vs_off": round(on / off, 3) if off else None,
    }


def _load_baseline(path):
    """The committed BENCH_simcore.json, if present and parseable."""
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _comparable(prior, payload) -> bool:
    """True when the baseline came from an equivalent host + config."""
    if not prior:
        return False
    return all(prior.get(k) == payload[k]
               for k in ("config_fingerprint", "python", "cpu_count"))


def _measure_suite(config, jobs):
    clear_cache()
    ctx = ExperimentContext(config=config, min_repetitions=3,
                            max_cycles=2_500_000, jobs=jobs)
    start = time.perf_counter()
    run_many(list(EXPERIMENTS), ctx)  # planner path, like the CLI
    wall = time.perf_counter() - start
    return {"wall_s": round(wall, 2), "jobs": jobs,
            "cells": ctx.cached_runs()}


def test_bench_perf_writes_simcore_json():
    fast_cfg = POWER5.small()
    # The fast-forward vs reference sections predate the array engine
    # and measure the FAME-level event-driven machinery; pin them to
    # the object engine so the ratio keeps meaning (under the array
    # engine the reference run telescopes while fast-forward's
    # rep-gate forces dense stepping, inverting the comparison).  The
    # array engine's own numbers live in the "array_engine" section.
    legacy_fast = dataclasses.replace(fast_cfg, engine="object")
    legacy_ref = dataclasses.replace(legacy_fast, fast_forward=False)
    jobs = int(os.environ.get("BENCH_JOBS", "0")) or (os.cpu_count() or 1)

    scenarios = {}
    for label, names, priorities in SCENARIOS:
        fast = _measure_scenario(legacy_fast, names, priorities)
        ref = _measure_scenario(legacy_ref, names, priorities)
        # Both engines must simulate the exact same number of cycles --
        # anything else means the fast path changed behaviour.
        assert fast["simulated_cycles"] == ref["simulated_cycles"], label
        scenarios[label] = {
            "fast_forward": fast,
            "reference": ref,
            "speedup": round(ref["wall_s"] / fast["wall_s"], 3)
            if fast["wall_s"] else None,
        }

    suite_ref = _measure_suite(legacy_ref, jobs=1)
    suite_fast_serial = _measure_suite(fast_cfg, jobs=1)
    suite_fast_jobs = _measure_suite(fast_cfg, jobs=jobs)
    suite = {
        "reference_serial": suite_ref,
        "fast_forward_serial": suite_fast_serial,
        "fast_forward_jobs": suite_fast_jobs,
        "speedup_engine": round(
            suite_ref["wall_s"] / suite_fast_serial["wall_s"], 3),
        "speedup_total": round(
            suite_ref["wall_s"] / suite_fast_jobs["wall_s"], 3),
    }

    array_scenarios = {}
    for label, names, horizon in ARRAY_SCENARIOS:
        arr, arr_retired = _measure_array_scenario(fast_cfg, names, horizon)
        obj, obj_retired = _measure_array_scenario(legacy_fast, names,
                                                   horizon)
        # Same instructions retired per thread at the same horizon --
        # the cheap cross-engine check worth repeating in the bench.
        assert arr_retired == obj_retired, label
        array_scenarios[label] = {
            "array": arr,
            "object": obj,
            "speedup": round(obj["wall_s"] / arr["wall_s"], 3)
            if arr["wall_s"] else None,
        }

    pmu_overhead = _measure_pmu_overhead(fast_cfg)
    governor_overhead = _measure_governor_overhead(fast_cfg)

    payload = {
        "config_fingerprint": fast_cfg.fingerprint(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "bench_jobs": jobs,
        "scenarios": scenarios,
        "suite": suite,
        "array_engine": {"floor": ARRAY_FLOOR,
                         "scenarios": array_scenarios},
        "pmu": pmu_overhead,
        "governor": governor_overhead,
    }
    out = ROOT / "BENCH_simcore.json"
    prior = _load_baseline(out)
    gate = _comparable(prior, payload)
    payload["pmu"]["baseline_gate_ran"] = gate
    payload["governor"]["baseline_gate_ran"] = gate
    payload["array_engine"]["baseline_gate_ran"] = gate
    if prior and "simcache" in prior:
        # The result-cache bench (test_bench_simcache.py) owns this
        # section via read-modify-write; keep it across rewrites.
        payload["simcache"] = prior["simcache"]
    out.write_text(json.dumps(payload, indent=2) + "\n")

    # Sanity floor, deliberately loose: on a single, possibly noisy
    # core the parallel run may not win, but the suite must complete
    # under both engines and the engines must agree cycle-for-cycle.
    assert suite["speedup_engine"] > 0.5
    assert all(s["speedup"] is not None for s in scenarios.values())

    # Per-scenario engine floor: the fast-forward engine must stay
    # within 5% of the reference even on scenarios it cannot skip.
    # Best-of-N keeps most host noise out, but these scenarios finish
    # in under ~150ms where repeated idle-host runs still swing the
    # raw ratio by +-20%; the same absolute slack the PMU gate uses
    # keeps them out of timer noise while a real slowdown (2x on any
    # scenario) still trips the gate.
    for label, s in scenarios.items():
        fast_wall = s["fast_forward"]["wall_s"]
        ref_wall = s["reference"]["wall_s"]
        assert fast_wall <= ref_wall / ENGINE_FLOOR + 0.05, (
            f"{label}: fast-forward engine at {s['speedup']:.3f}x of "
            f"reference ({fast_wall:.4f}s vs {ref_wall:.4f}s), below "
            f"the {ENGINE_FLOOR} floor")

    # Array-engine speedup gate: the compiled kernels plus the
    # steady-state replay telescoper must beat the object engine by at
    # least ARRAY_FLOOR on both CPU-bound scenarios.  Engine-relative,
    # so it runs on every host regardless of the baseline.
    for label, s in array_scenarios.items():
        assert s["speedup"] is not None and s["speedup"] >= ARRAY_FLOOR, (
            f"{label}: array engine at {s['speedup']}x of the object "
            f"engine, below the {ARRAY_FLOOR} floor")

    # Array-engine absolute-throughput gate: on a comparable host the
    # array engine must also hold ENGINE_FLOOR of its own committed
    # cycles_per_sec -- the relative gate above would miss both
    # engines slowing down together.
    if gate:
        prior_array = prior.get("array_engine", {}).get("scenarios", {})
        for label, s in array_scenarios.items():
            base = prior_array.get(label, {}).get("array", {}) \
                              .get("cycles_per_sec")
            if base:
                measured = s["array"]["cycles_per_sec"]
                assert measured >= base * ENGINE_FLOOR, (
                    f"{label}: array engine at {measured} cycles/s vs "
                    f"baseline {base} (floor {ENGINE_FLOOR})")

    # PMU-off regression gate: with the PMU detached, the always-on
    # raw counters are the only cost the subsystem adds to the hot
    # loop, and it must stay within 10% of the committed baseline.
    # Only meaningful when the baseline ran on an equivalent host
    # (cross-machine wall-clock comparisons say nothing); a small
    # absolute slack keeps sub-100ms scenarios out of timer noise.
    if gate:
        prior_pmu = prior.get("pmu", {})
        base_off = prior_pmu.get("wall_off_s")
        if base_off is None:  # first baseline with a pmu section
            base_off = (prior["scenarios"]
                        ["smt_4_4_cpu_int_ldint_l2"]
                        ["fast_forward"]["wall_s"])
        measured = pmu_overhead["wall_off_s"]
        assert measured <= base_off * 1.10 + 0.05, (
            f"PMU-off run regressed: {measured:.4f}s vs baseline "
            f"{base_off:.4f}s (+10% budget)")

    # Governor-off regression gate, same shape: an ungoverned run
    # must not pay for the governor subsystem's existence.  The hook
    # list is empty and the sysfs interface untouched, so this should
    # be literally the pre-governor code path.
    if gate:
        base_off = prior.get("governor", {}).get("wall_off_s")
        if base_off is None:  # first baseline with a governor section
            base_off = prior.get("pmu", {}).get("wall_off_s") or (
                prior["scenarios"]["smt_4_4_cpu_int_ldint_l2"]
                ["fast_forward"]["wall_s"])
        measured = governor_overhead["wall_off_s"]
        assert measured <= base_off * 1.10 + 0.05, (
            f"governor-off run regressed: {measured:.4f}s vs baseline "
            f"{base_off:.4f}s (+10% budget)")
