"""Benches for the extension experiments (not paper artifacts).

- noise: the section 4.1/4.3 methodology argument — the stock kernel's
  priority resets neutralize the mechanism under study;
- modelcheck: the closed-form decode-share model tracks the simulator.
"""

from repro.experiments import run_modelcheck, run_noise


def test_bench_noise(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_noise(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    stock = report.data["stock kernel, ticks on core"]
    patched = report.data["patched kernel, ticks on core"]
    isolated = report.data["isolated (no kernel activity)"]
    # The stock kernel wipes the (6,1) setting at each tick...
    assert stock["final_priorities"] == (4, 4)
    assert stock["ratio"] < 2.0
    # ...while the patched kernel behaves like full isolation.
    assert patched["final_priorities"] == (6, 1)
    assert patched["ratio"] > 10.0
    assert abs(patched["ipc0"] - isolated["ipc0"]) < 0.05
    # Ticks also add repetition-time jitter.
    assert stock["rep_jitter"] > 5 * patched["rep_jitter"]


def test_bench_modelcheck(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_modelcheck(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    # The first-order model tracks the simulator closely for the
    # decode-limited and memory-bound kernels across the whole range.
    for name in ("cpu_int", "ldint_l1", "ldint_mem"):
        for point in report.data[name]:
            assert abs(point["error"]) < 0.25, (name, point)
    # Every prediction is within 2x even at the knees.
    for series in report.data.values():
        for point in series:
            assert abs(point["error"]) < 1.0, point
