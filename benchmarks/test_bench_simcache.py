"""Bench: persistent result cache, cold vs warm full suite.

Runs the complete experiment suite (the ``power5-repro all``
equivalent: cross-experiment planner + every experiment) three times
against a fresh cache directory:

- **cold** -- empty cache, every cell simulated and stored;
- **warm** -- new context, same directory, every cell served from
  disk;
- **warm, jobs=2** -- same again with the parallel path enabled (all
  hits, so no pool is ever forked; the path must still be identical).

The three report lists must be byte-identical -- the cache is pure
memoisation -- and the warm run must be at least ``WARM_FLOOR`` times
faster than the cold one (the cell-free experiments: table1, figure1,
table4 and noise are recomputed either way and bound the achievable
speedup).  Results land in the ``"simcache"`` section of
``BENCH_simcore.json`` via read-modify-write, so the engine bench's
wholesale rewrite and this section never clobber each other.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.config import POWER5
from repro.experiments import EXPERIMENTS, ExperimentContext, run_many
from repro.simcache import SimCache
from repro.workloads.tracecache import clear_cache

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Minimum cold/warm wall-clock ratio for the full suite.
WARM_FLOOR = 5.0


def _run_suite(cache_dir, jobs: int = 1):
    """One full planned suite run; returns (reports, wall, stats)."""
    clear_cache()
    cache = SimCache(cache_dir) if cache_dir else None
    ctx = ExperimentContext(config=POWER5.small(), min_repetitions=3,
                            max_cycles=2_500_000, jobs=jobs,
                            simcache=cache)
    start = time.perf_counter()
    reports = run_many(list(EXPERIMENTS), ctx)
    wall = time.perf_counter() - start
    stats = cache.stats() if cache else {}
    return reports, wall, stats


def test_bench_simcache_cold_vs_warm():
    with tempfile.TemporaryDirectory() as tmp:
        cold_reports, cold_wall, cold_stats = _run_suite(tmp)
        warm_reports, warm_wall, warm_stats = _run_suite(tmp)
        jobs_reports, jobs_wall, _ = _run_suite(tmp, jobs=2)

    # Transparency: the cache changes when work happens, never what
    # any experiment reports.
    assert repr(cold_reports) == repr(warm_reports)
    assert repr(cold_reports) == repr(jobs_reports)

    # The cold run filled the cache; the warm runs only read it.
    assert cold_stats["stores"] == cold_stats["misses"] > 0
    assert warm_stats["misses"] == 0
    assert warm_stats["hits"] == cold_stats["stores"]

    speedup = cold_wall / warm_wall if warm_wall else None
    section = {
        "cold_wall_s": round(cold_wall, 2),
        "warm_wall_s": round(warm_wall, 2),
        "warm_jobs2_wall_s": round(jobs_wall, 2),
        "speedup_warm": round(speedup, 2) if speedup else None,
        "cells_cached": cold_stats["stores"],
        "cache_bytes": cold_stats["bytes"],
        "reports_identical": True,
    }

    # Read-modify-write: only this bench owns the "simcache" section.
    out = ROOT / "BENCH_simcore.json"
    try:
        payload = json.loads(out.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["simcache"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup is not None and speedup >= WARM_FLOOR, (
        f"warm suite only {speedup:.2f}x faster than cold "
        f"({warm_wall:.2f}s vs {cold_wall:.2f}s), floor {WARM_FLOOR}")
