"""Bench: the closed-loop governor vs the best static assignment.

Beyond the paper: its characterization is entirely static -- every
priority pair measured offline.  The governor experiment runs the
online policies against that exhaustive sweep and this bench asserts
the headline claims at full scale:

- ``ipc_balance`` and ``throughput_max`` each match (within the
  experiment's tolerance) the best static assignment under their own
  objective on at least one pair -- without sweeping the ladder;
- ``transparent`` keeps the foreground's slowdown under its budget on
  the compute-foreground pairs (the ``ldint_l2`` foreground suffers
  cache interference no priority assignment can remove, so there the
  policy's contract is holding the background at the floor, asserted
  in the tier-1 tests instead);
- the pipeline policy converges to the hand-tuned FFT/LU optimum.
"""

from repro.experiments import run_governor
from repro.governor import GovernorConfig


def test_bench_governor(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_governor(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    claims = report.data["claims"]

    # The adaptive policies recover a hand-tuned optimum online.
    assert claims["ipc_balance_matches_best_static_min"]
    assert claims["throughput_max_matches_best_static_total"]

    # Transparent execution: foreground slowdown under budget wherever
    # the budget is attainable (compute foregrounds).
    budget = GovernorConfig().budget
    slow = dict(claims["transparent_fg_slowdowns"])
    assert slow["cpu_int+ldint_mem"] <= budget
    assert slow["cpu_int+cpu_fp"] <= budget

    # The pipeline policy matches Table 4's best hand-tuned static.
    assert claims["pipeline_matches_best_static"]
    gov = report.data["pipeline"]["governed"]
    assert gov["changes"] > 0

    # Every governed run actually closed the loop: epochs elapsed and
    # the decision trail is recorded for all pairs and policies.
    for pd in report.data["pairs"].values():
        for stats in pd["policies"].values():
            assert stats["epochs"] > 0
