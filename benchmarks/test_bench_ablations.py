"""Ablation benches: isolate the design choices DESIGN.md calls out.

Each ablation switches one mechanism off and shows the paper-relevant
behaviour it is responsible for:

- the dynamic resource balancer keeps the (4,4) baseline competitive
  against memory-bound GCT hogs (paper section 3.1 / 5.3);
- strict decode-slot ownership is what produces deep starvation;
- the shared load-miss queue / DRAM bus produce the mem-vs-mem
  interference;
- the group-break rule sets decode efficiency (ST IPC of cpu_int).
"""

import dataclasses


from repro.config import POWER5
from repro.fame import FameRunner
from repro.microbench import make_microbenchmark

BASE = POWER5.small()
OFFSET = (1 << 27) + 8192


def measure_pair(config, primary, secondary, priorities=(4, 4)):
    runner = FameRunner(config, min_repetitions=3, max_cycles=2_000_000)
    return runner.run_pair(
        make_microbenchmark(primary, config),
        make_microbenchmark(secondary, config, base_address=OFFSET),
        priorities=priorities)


def test_bench_ablation_balancer(benchmark):
    """Without the balancer, a memory-bound thread wrecks its sibling
    at equal priorities -- the balancer is what keeps the default
    baseline usable."""
    def run():
        off = BASE.replace(balancer=dataclasses.replace(
            BASE.balancer, enabled=False))
        with_bal = measure_pair(BASE, "cpu_int", "ldint_mem")
        without = measure_pair(off, "cpu_int", "ldint_mem")
        return with_bal.thread(0).ipc, without.thread(0).ipc
    with_bal, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_bal > 1.5 * without


def test_bench_ablation_flush_mechanism(benchmark):
    """The flush (squash the miss-blocked GCT hog) is the specific
    defence; stall alone is not enough against DRAM-bound threads."""
    def run():
        no_flush = BASE.replace(balancer=dataclasses.replace(
            BASE.balancer, flush_enabled=False))
        with_flush = measure_pair(BASE, "cpu_int", "ldint_mem")
        without = measure_pair(no_flush, "cpu_int", "ldint_mem")
        return with_flush.thread(0).ipc, without.thread(0).ipc
    with_flush, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_flush >= without * 0.98


def test_bench_ablation_starvation_needs_strict_slots(benchmark):
    """Deep starvation comes from strict slot ownership *plus* GCT
    capture: with the balancer fully protecting the victim the
    slowdown shrinks by an order of magnitude."""
    def run():
        base = measure_pair(BASE, "cpu_int", "lng_chain_cpuint", (4, 4))
        starved = measure_pair(BASE, "cpu_int", "lng_chain_cpuint",
                               (1, 6))
        return (starved.thread(0).avg_repetition_cycles
                / base.thread(0).avg_repetition_cycles)
    slowdown = benchmark.pedantic(run, rounds=1, iterations=1)
    assert slowdown > 10


def test_bench_ablation_dram_bus(benchmark):
    """The serialized DRAM bus produces the mem-vs-mem mutual
    degradation of Table 3 (0.02 -> 0.01); with an uncontended bus the
    pair barely interferes."""
    def run():
        fast_bus = BASE.replace(memory=dataclasses.replace(
            BASE.memory, dram_bus_gap=1))
        contended = measure_pair(BASE, "ldint_mem", "ldint_mem")
        uncontended = measure_pair(fast_bus, "ldint_mem", "ldint_mem")
        return contended.thread(0).ipc, uncontended.thread(0).ipc
    contended, uncontended = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    assert uncontended > 1.2 * contended


def test_bench_ablation_lmq_capacity(benchmark):
    """Shrinking the shared LMQ to one entry serializes all misses and
    hurts a high-MLP thread."""
    def run():
        tiny = BASE.replace(memory=dataclasses.replace(
            BASE.memory, lmq_entries=1))
        wide = measure_pair(BASE, "ldint_l2", "ldint_mem")
        narrow = measure_pair(tiny, "ldint_l2", "ldint_mem")
        return wide.thread(0).ipc, narrow.thread(0).ipc
    wide, narrow = benchmark.pedantic(run, rounds=1, iterations=1)
    assert wide > narrow


def test_bench_ablation_group_break_rule(benchmark):
    """The break-on-long-dependence rule sets decode efficiency: with
    it disabled groups grow and ST IPC of the dependence-dense kernels
    rises -- losing the paper's slot-share sensitivity."""
    def run():
        runner_a = FameRunner(BASE, min_repetitions=3)
        no_break = BASE.replace(break_group_on_long_dep=False)
        runner_b = FameRunner(no_break, min_repetitions=3)
        with_rule = runner_a.run_single(
            make_microbenchmark("cpu_int", BASE)).thread(0).ipc
        without = runner_b.run_single(
            make_microbenchmark("cpu_int", no_break)).thread(0).ipc
        return with_rule, without
    with_rule, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert without > with_rule


def test_bench_ablation_low_power_mode(benchmark):
    """(1,1) is low-power mode: one decode slot per 32 cycles, not an
    even 50/50 split -- total throughput collapses by design."""
    def run():
        normal = measure_pair(BASE, "cpu_int", "cpu_int", (4, 4))
        low_power = measure_pair(BASE, "cpu_int", "cpu_int", (1, 1))
        return normal.total_ipc, low_power.total_ipc
    normal, low_power = benchmark.pedantic(run, rounds=1, iterations=1)
    assert low_power < 0.15 * normal
