"""Bench: regenerate Figure 2 (positive-priority speedup curves).

Shape checks from the paper's section 5.1: curves are monotone
non-decreasing, cpu-bound threads approach their 2-2.5x recovery,
+2 is near saturation for high-IPC threads, and memory-bound threads
benefit only against other memory-bound threads.
"""

from repro.experiments import run_figure2


def test_bench_figure2(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_figure2(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    series = report.data["series"]

    # Monotone improvement (small tolerance for simulation noise).
    for curve in series.values():
        for a, b in zip(curve, curve[1:]):
            assert b >= 0.93 * a

    # cpu_int recovers strongly against the chain thread (paper ~2.5x).
    assert series[("cpu_int", "lng_chain_cpuint")][-1] > 1.5

    # +2 reaches most of the +5 benefit for the cpu-bound thread.
    cpu = series[("cpu_int", "lng_chain_cpuint")]
    assert cpu[1] > 0.75 * cpu[-1]

    # Memory-bound gains meaningfully only vs memory-bound (paper:
    # +70% for ldint_mem vs ldint_mem, ~nothing vs cpu_int).
    assert series[("ldint_mem", "ldint_mem")][-1] > 1.3
    assert series[("ldint_mem", "cpu_int")][-1] < 1.25

    # ldint_l2 benefits most against another ldint_l2 (paper: +240%).
    l2 = series[("ldint_l2", "ldint_l2")]
    assert l2[-1] > 1.8
