"""Bench: regenerate Figure 6 (transparent execution).

Paper section 5.5: with the background at priority 1, foregrounds run
near their single-thread speed; high-IPC foregrounds are the most
affected (especially with a memory-bound background); ldint_mem as a
foreground is immune (~7%) except against another ldint_mem; and the
background still achieves measurable progress.
"""

from repro.experiments import run_figure6


def test_bench_figure6(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_figure6(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    ab = report.data["ab"]
    panel_d = report.data["d"]

    benches = ("ldint_l1", "ldint_l2", "ldint_mem", "cpu_int",
               "cpu_fp", "lng_chain_cpuint")

    # Transparency: at (6,1) every foreground stays within 40% of ST,
    # and the low-IPC foregrounds within 15% (paper: ~10%).  The one
    # exception is ldint_l2 over a memory-bound background: priority
    # controls decode slots, not cache contents, and the background's
    # fills evict the foreground's L2-resident set (the paper likewise
    # singles out ldint_l2 as a most-affected foreground).
    for fg in benches:
        for bg in benches:
            limit = 2.6 if fg == "ldint_l2" and bg == "ldint_mem" else 1.4
            assert ab[(6, fg, bg)] < limit, (fg, bg)
    for fg in ("cpu_fp", "lng_chain_cpuint"):
        for bg in benches:
            assert ab[(6, fg, bg)] < 1.15

    # ldint_mem foreground is immune except against itself.
    for bg in ("cpu_int", "cpu_fp", "lng_chain_cpuint", "ldint_l1"):
        assert ab[(6, "ldint_mem", bg)] < 1.12
    assert ab[(6, "ldint_mem", "ldint_mem")] >= \
        ab[(6, "ldint_mem", "cpu_int")]

    # Lowering the foreground priority towards the background
    # increases the interference (panel c trend).
    for fg in ("cpu_fp", "lng_chain_cpuint"):
        curve = report.data["c"][fg]
        assert curve[-1] >= curve[0] - 0.05  # (2,1) at least as bad as (6,1)

    # Background threads achieve nonzero progress (panel d; paper
    # reports e.g. 0.23 against cpu_fp foregrounds).
    for bg in benches:
        assert panel_d[(bg, 6)] > 0.0
    # A cpu-bound background gets more done than a memory-bound one.
    assert panel_d[("cpu_int", 6)] > panel_d[("ldint_mem", 6)]
