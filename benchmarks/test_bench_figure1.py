"""Bench: regenerate Figure 1 (FAME methodology illustration).

The figure's semantics: with a 10-repetition quota, the run ends when
the slower benchmark completes its quota; the faster one has executed
more repetitions by then and its trailing partial execution is
discarded from its accounting.
"""

from repro.experiments.figure1 import run_figure1


def test_bench_figure1(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_figure1(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    slow, fast = report.data["slow"], report.data["fast"]
    quota = report.data["quota"]
    assert slow["repetitions"] >= quota
    assert fast["repetitions"] > slow["repetitions"]
    # The run ends with the slow benchmark's last completion.
    assert slow["rep_end_times"][-1] <= report.data["total_cycles"]
    # Fast thread's FAME window excludes its trailing partial rep.
    assert fast["accounted_cycles"] == fast["rep_end_times"][-1]
