"""Bench: regenerate Table 3 (ST + SMT(4,4) IPC matrix).

Checks the structural properties the paper's Table 3 exhibits: the
ordering of single-thread IPCs, the halving of the slot-limited
kernels under SMT, and the insensitivity of the latency-bound ones.
"""

import pytest

from repro.experiments import run_table3
from repro.experiments.table3 import PAPER_TABLE3


def test_bench_table3(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_table3(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    st = report.data["st"]
    pairs = report.data["pairs"]

    # ST IPC ordering matches the paper:
    # ldint_l1 > cpu_int > lng_chain ~ cpu_fp > ldint_l2 > ldint_mem.
    assert st["ldint_l1"] > st["cpu_int"] > st["cpu_fp"]
    assert st["cpu_fp"] > st["ldint_l2"] > st["ldint_mem"]

    # Slot-limited kernels halve against themselves (paper: 2.29->1.15,
    # 1.14->0.61); tolerance 25%.
    for name in ("ldint_l1", "cpu_int"):
        pt, _ = pairs[(name, name)]
        assert pt == pytest.approx(st[name] / 2, rel=0.25)

    # Latency-bound kernels barely degrade (paper: 0.51->0.42 etc.).
    for name in ("cpu_fp", "lng_chain_cpuint"):
        pt, _ = pairs[(name, name)]
        assert pt > 0.7 * st[name]

    # ldint_l2 thrashes against itself (paper: 0.27 -> 0.11).
    pt_l2, _ = pairs[("ldint_l2", "ldint_l2")]
    assert pt_l2 < 0.5 * st["ldint_l2"]

    # ldint_mem halves against itself but is unaffected by cpu threads.
    pt_mm, _ = pairs[("ldint_mem", "ldint_mem")]
    pt_mc, _ = pairs[("ldint_mem", "cpu_int")]
    assert pt_mm < 0.75 * st["ldint_mem"]
    assert pt_mc > 0.8 * st["ldint_mem"]

    # Every measured cell exists for every paper cell.
    for primary, row in PAPER_TABLE3.items():
        for secondary in row:
            if secondary == "st":
                continue
            assert (primary, secondary) in pairs
