"""Bench: the simulation service, cold vs warm overlapping clients.

Runs an in-process job server (2 persistent workers, fresh cache
directory) and submits the table3 sweep from two concurrent clients
with overlapping plans, twice:

- **cold** -- empty cache: every unique cell computed exactly once
  (single-flight dedup absorbs the overlap), values fetched over
  ``/entry``;
- **warm** -- same plans resubmitted: every cell deduped against the
  server's state, nothing recomputed.

Gates: the server's own counters must show one computation per unique
cell and a perfect warm-path dedup hit-rate, and the warm resubmission
must stay within ``WARM_CEILING`` (absolute or relative to cold) --
the regression gate on per-submission service overhead (keying, HTTP,
polling), which a simulator change cannot excuse.  Results land in the
``"service"`` section of ``BENCH_simcore.json`` via read-modify-write.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import threading
import time

from repro.config import POWER5
from repro.experiments import figure2, table3
from repro.experiments.base import ExperimentContext
from repro.service import ServiceBackend, ServiceClient
from repro.service.server import ServerConfig, ServiceHandle

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Warm-path budget: max(absolute seconds, fraction of cold wall).
WARM_CEILING_S = 5.0
WARM_CEILING_FRACTION = 0.25


def _two_clients(url, plans) -> float:
    """Submit the plans from concurrent clients; returns wall-clock."""
    barrier = threading.Barrier(len(plans))
    errors: list[BaseException] = []

    def client(plan):
        ctx = ExperimentContext(config=POWER5.small(),
                                min_repetitions=3,
                                max_cycles=2_500_000,
                                backend=ServiceBackend(url))
        barrier.wait()
        try:
            ctx.prefetch(plan)
        except BaseException as exc:
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=client, args=(plan,))
               for plan in plans]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    return wall


def test_bench_service_cold_vs_warm_overlapping_clients():
    plan_a = table3.cells()
    plan_b = list(dict.fromkeys(table3.cells()
                                + figure2.cells(diffs=(1, 2))))
    unique = len(set(plan_a) | set(plan_b))
    submitted_per_round = len(plan_a) + len(plan_b)

    with tempfile.TemporaryDirectory() as tmp:
        handle = ServiceHandle(ServerConfig(
            port=0, workers=2, cache_dir=str(pathlib.Path(tmp) / "cache"),
            retry_backoff=0.05)).start()
        try:
            cold_wall = _two_clients(handle.url, [plan_a, plan_b])
            cold = ServiceClient(handle.url).metrics()["dedup"]
            warm_wall = _two_clients(handle.url, [plan_a, plan_b])
            warm = ServiceClient(handle.url).metrics()["dedup"]
        finally:
            handle.stop()

    computed_warm = warm["computed"] - cold["computed"]
    deduped_warm = (warm["cached"] + warm["coalesced"]
                    - cold["cached"] - cold["coalesced"])
    hit_rate_warm = deduped_warm / submitted_per_round
    single_flight_ok = (cold["computed"] == unique
                        and computed_warm == 0)

    section = {
        "unique_cells": unique,
        "submitted_per_round": submitted_per_round,
        "cold_2client_wall_s": round(cold_wall, 2),
        "warm_2client_wall_s": round(warm_wall, 2),
        "warm_speedup": (round(cold_wall / warm_wall, 2)
                         if warm_wall else None),
        "cold_dedup": {k: cold[k] for k in
                       ("submitted", "cached", "coalesced", "computed",
                        "retries", "failed")},
        "dedup_hit_rate_warm": round(hit_rate_warm, 4),
        "single_flight_ok": single_flight_ok,
    }

    # Read-modify-write: only this bench owns the "service" section.
    out = ROOT / "BENCH_simcore.json"
    try:
        payload = json.loads(out.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["service"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert single_flight_ok, (
        f"expected {unique} unique cells computed once "
        f"(cold {cold['computed']}, warm +{computed_warm})")
    assert hit_rate_warm == 1.0, (
        f"warm resubmission should dedup every cell, "
        f"hit rate {hit_rate_warm:.3f}")
    ceiling = max(WARM_CEILING_S, WARM_CEILING_FRACTION * cold_wall)
    assert warm_wall <= ceiling, (
        f"warm-path service overhead regressed: {warm_wall:.2f}s "
        f"for {submitted_per_round} deduped submissions "
        f"(ceiling {ceiling:.2f}s, cold {cold_wall:.2f}s)")
