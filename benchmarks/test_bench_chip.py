"""Bench: allocation policies on the dual-core chip, at full scale.

Runs the ``chip`` experiment (every mix x every policy on the 2-core
chip) and asserts its headline claims:

- at least one adaptive placement policy (``symbiosis`` or
  ``priority_aware``) beats the static ``round_robin`` baseline on
  total chip throughput on at least one mix;
- transparent background consolidation shields the foreground jobs:
  their mean slowdown under the ``background`` policy is below what
  round_robin imposes on them;
- no run hit the cycle cap (the numbers compare completed workloads).

The headline numbers are appended to ``BENCH_simcore.json`` under a
``"chip"`` key, preserving every other section of the committed file.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments import run_chip

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_bench_chip(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_chip(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    data = report.data

    # Every policy completed every mix within budget.
    for mix_data in data["mixes"].values():
        for stats in mix_data["policies"].values():
            assert not stats["capped"]
            assert stats["throughput"] > 0

    # Adaptive placement wins somewhere, and the shield claim holds.
    beats = data["claims"]["adaptive_beats_round_robin"]
    assert beats, "no adaptive policy beat round_robin on any mix"
    assert all(b["gain"] > 0 for b in beats)
    shields = data["claims"]["background_foreground_shield"]
    assert any(s["shields"] for s in shields)

    # Append the chip section to the committed benchmark file without
    # disturbing the perf bench's sections.
    out = ROOT / "BENCH_simcore.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["chip"] = {
        "n_cores": data["n_cores"],
        "quota": data["quota"],
        "throughput": {
            mix: {pol: round(stats["throughput"], 4)
                  for pol, stats in mix_data["policies"].items()}
            for mix, mix_data in data["mixes"].items()},
        "best_gain_vs_round_robin": round(
            max(b["gain"] for b in beats), 4),
        "claims": {
            "adaptive_beats_round_robin": [
                {"mix": b["mix"], "policy": b["policy"],
                 "gain": round(b["gain"], 4)} for b in beats],
            "background_foreground_shield": [
                {"mix": s["mix"], "shields": s["shields"]}
                for s in shields],
        },
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
