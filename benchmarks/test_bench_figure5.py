"""Bench: regenerate Figure 5 (case-study throughput curves).

Paper: h264ref+mcf peaks at +23.7% combined IPC (+7.2% at +2);
applu+equake at +14%.  The reproduction must show a positive peak of
the same order for both pairs, reached by raising the high-IPC
thread's priority.
"""

from repro.experiments import run_figure5


def test_bench_figure5(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_figure5(ctx),
                                rounds=1, iterations=1)
    save_report(report)

    h264 = report.data[("h264ref", "mcf")]
    peak = max(s["gain"] for s in h264)
    # Paper: +23.7%.  Accept a band around it.
    assert 0.08 < peak < 0.80
    # Already positive at +2 (paper: +7.2%).
    at2 = next(s for s in h264 if s["diff"] == 2)
    assert at2["gain"] > 0.02
    # The prioritized thread gains, the victim loses.
    base = next(s for s in h264 if s["diff"] == 0)
    best = max(h264, key=lambda s: s["total_ipc"])
    assert best["primary_ipc"] > base["primary_ipc"]
    assert best["secondary_ipc"] < base["secondary_ipc"]

    applu = report.data[("applu", "equake")]
    peak_b = max(s["gain"] for s in applu)
    # Paper: +14%.
    assert 0.04 < peak_b < 0.80
