"""Bench: design-space exploration, cold vs warm through the cache.

The ``dse`` experiment simulates a small PMU-instrumented cell matrix
once and prices the full (node x frequency x cores) design space as
post-hoc arithmetic.  That split is the performance claim: a warm
sweep re-prices hundreds of design points without simulating anything,
so it must be dominated by cache reads and float math.

Cold and warm runs against one cache directory must render identical
reports, the warm run must serve every cell from disk, and the warm
wall-clock is gated at ``WARM_FLOOR`` times faster than cold.
Results land in the ``"dse"`` section of ``BENCH_simcore.json`` via
read-modify-write, so this section and the engine bench's wholesale
rewrite never clobber each other.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.config import POWER5
from repro.experiments import ExperimentContext, run_many
from repro.simcache import SimCache
from repro.workloads.tracecache import clear_cache

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Minimum cold/warm wall-clock ratio for the dse sweep.
WARM_FLOOR = 3.0


def _run_dse(cache_dir):
    """One planned dse run; returns (report, wall, cache stats)."""
    clear_cache()
    cache = SimCache(cache_dir)
    ctx = ExperimentContext(config=POWER5.small(), min_repetitions=3,
                            max_cycles=2_500_000, pmu=True,
                            simcache=cache)
    start = time.perf_counter()
    (report,) = run_many(["dse"], ctx)
    wall = time.perf_counter() - start
    return report, wall, cache.stats()


def test_bench_dse_cold_vs_warm(save_report):
    with tempfile.TemporaryDirectory() as tmp:
        cold_report, cold_wall, cold_stats = _run_dse(tmp)
        warm_report, warm_wall, warm_stats = _run_dse(tmp)
    save_report(cold_report)

    # Transparency: pricing is pure arithmetic over cached counters.
    assert repr(cold_report) == repr(warm_report)
    assert cold_stats["stores"] == cold_stats["misses"] > 0
    assert warm_stats["misses"] == 0

    claims = cold_report.data["claims"]
    speedup = cold_wall / warm_wall if warm_wall else None
    section = {
        "cold_wall_s": round(cold_wall, 2),
        "warm_wall_s": round(warm_wall, 2),
        "speedup_warm": round(speedup, 2) if speedup else None,
        "design_points": len(cold_report.data["points"]),
        "pareto_points": len(cold_report.data["pareto"]),
        "cells_cached": cold_stats["stores"],
        "governed_cap_ratio": round(claims["governed_cap_ratio"], 4),
        "lowest_power_all_1v1": claims["lowest_power_all_1v1"],
        "reports_identical": True,
    }

    # Read-modify-write: only this bench owns the "dse" section.
    out = ROOT / "BENCH_simcore.json"
    try:
        payload = json.loads(out.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["dse"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert claims["governed_holds_cap"]
    assert speedup is not None and speedup >= WARM_FLOOR, (
        f"warm dse sweep only {speedup:.2f}x faster than cold "
        f"({warm_wall:.2f}s vs {cold_wall:.2f}s), floor {WARM_FLOOR}")
