"""Bench: regenerate Table 1 (priority levels / privilege / or-nops)."""

from repro.experiments import run_table1


def test_bench_table1(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_table1(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    assert not report.data["failures"]
    assert len(report.data["rows"]) == 8
    # Spot-check the paper's encodings.
    text = report.text
    for form in ("or 31,31,31", "or 1,1,1", "or 6,6,6", "or 2,2,2",
                 "or 5,5,5", "or 3,3,3", "or 7,7,7"):
        assert form in text
