"""Bench: regenerate Figure 3 (negative-priority slowdown curves).

Shape checks from section 5.2: slowdowns grow with the difference,
reach order-of-magnitude for cpu-bound threads, while ldint_mem stays
nearly flat against non-memory partners, and the effect of negative
priorities far exceeds the corresponding positive benefit.
"""

from repro.experiments import run_figure2, run_figure3


def test_bench_figure3(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_figure3(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    series = report.data["series"]

    # Slowdowns are monotone in the priority difference.  The
    # ldint_l2-vs-ldint_l2 pair wobbles: its performance is dominated
    # by which thread's lines survive the shared L2 sets, a bistable
    # thrash -- allow it more slack.
    for (p, s), curve in series.items():
        tolerance = 0.75 if p == s == "ldint_l2" else 0.9
        for a, b in zip(curve, curve[1:]):
            assert b >= tolerance * a, (p, s, curve)

    # cpu-bound starvation reaches order-of-magnitude at -5
    # (paper: 20x vs cpu, 42x vs mem).
    assert series[("cpu_int", "cpu_int")][-1] > 10
    assert series[("cpu_int", "ldint_mem")][-1] > 10

    # ldint_mem is insensitive against non-memory partners
    # (paper: < 2.5x), more sensitive against itself.
    assert series[("ldint_mem", "cpu_int")][-1] < 2.5
    assert series[("ldint_mem", "cpu_fp")][-1] < 2.5
    assert (series[("ldint_mem", "ldint_mem")][-1]
            > series[("ldint_mem", "cpu_int")][-1])

    # Negative effects dwarf positive ones (section 5.2: "while
    # positive priorities improve up to ~4x, negative can degrade by
    # more than forty times").
    fig2 = run_figure2(ctx)  # cached measurements, costs nothing new
    max_gain = max(curve[-1] for curve in fig2.data["series"].values())
    max_loss = max(curve[-1] for curve in series.values())
    assert max_loss > 2 * max_gain
