"""Bench: regenerate Figure 4 (throughput across the priority range).

Shape checks from section 5.3: prioritizing the higher-IPC thread of
an unbalanced pair improves total IPC (up to ~2x in extreme cases),
de-prioritizing it collapses throughput, and the memory/memory pair
improves when either side is prioritized.
"""

from repro.experiments import run_figure4


def test_bench_figure4(benchmark, ctx, save_report):
    report = benchmark.pedantic(lambda: run_figure4(ctx),
                                rounds=1, iterations=1)
    save_report(report)
    series = report.data["series"]
    diffs = report.data["diffs"]
    zero = diffs.index(0)

    # The baseline point is 1.0 by construction.
    for curve in series.values():
        assert abs(curve[zero] - 1.0) < 1e-9

    # Prioritizing cpu_int over the chain thread wins big (paper: up
    # to ~2x for such pairs).
    up = series[("cpu_int", "lng_chain_cpuint")][diffs.index(2)]
    down = series[("cpu_int", "lng_chain_cpuint")][diffs.index(-2)]
    assert up > 1.25
    assert down < 0.75

    # Wrongly prioritizing a memory-bound thread over a cpu-bound one
    # never helps throughput (rule of thumb in section 5.1).
    mem_up = series[("ldint_mem", "cpu_int")][diffs.index(4)]
    assert mem_up < 1.1

    # In general the best throughput comes from raising the
    # higher-IPC side: check across all pairs with a large ST gap.
    gains = []
    for (p, s), curve in series.items():
        if p == "ldint_l1" and s in ("lng_chain_cpuint", "cpu_fp"):
            gains.append(curve[diffs.index(2)])
    assert all(g > 1.0 for g in gains)
