"""Bench: the prefetch subsystem's two performance promises.

First, the characterization experiment is cacheable like every other:
a warm ``prefetch`` run against a populated cache directory must
re-render the full priority x depth/degree matrix (including the twin
contexts' prefetch-on cells and the governed run) from disk,
``WARM_FLOOR`` times faster than cold and byte-identical to it.

Second, the subsystem is free when off: the default-off prefetcher
sits on the L1-miss hot path of every simulation, so its cost there
-- two attribute checks per miss -- is gated at ``OVERHEAD_CEIL``
against a machine with the prefetcher nulled out entirely
(``hierarchy._pf = None``, the alias the hot path reads).

Results land in the ``"prefetch"`` section of ``BENCH_simcore.json``
via read-modify-write, so concurrent bench sections never clobber
each other.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from repro.config import POWER5
from repro.core import make_core
from repro.experiments import ExperimentContext, run_many
from repro.microbench import make_microbenchmark
from repro.simcache import SimCache
from repro.workloads.tracecache import clear_cache

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Minimum cold/warm wall-clock ratio for the prefetch experiment.
WARM_FLOOR = 3.0

#: Maximum fractional slowdown the default-off prefetcher may add to
#: a miss-heavy run versus a prefetcher-free memory hierarchy.
OVERHEAD_CEIL = 0.05

SECONDARY_BASE = (1 << 27) + 8192


def _run_prefetch(cache_dir):
    """One planned prefetch run; returns (report, wall, cache stats)."""
    clear_cache()
    cache = SimCache(cache_dir)
    ctx = ExperimentContext(config=POWER5.small(), min_repetitions=3,
                            max_cycles=2_500_000, pmu=True,
                            simcache=cache)
    start = time.perf_counter()
    (report,) = run_many(["prefetch"], ctx)
    wall = time.perf_counter() - start
    return report, wall, cache.stats()


def _step_walls(cycles: int = 400_000, repeats: int = 5):
    """Interleaved best-of-N walls of a miss-heavy pair run.

    Returns ``(bare, default_off)``: prefetcher nulled out vs the
    default-off prefetcher on the L1-miss path.  The arms are
    interleaved so a host-load spike lands on both alike -- measured
    back to back, a spike on one arm used to swing the ~2-3%-scale
    overhead fraction negative and flap the gate on busy CI hosts.
    """
    config = POWER5.small()

    def one(null_pf: bool) -> float:
        core = make_core(config)
        core.load([make_microbenchmark("ldint_mem", config),
                   make_microbenchmark("ldint_mem", config,
                                       base_address=SECONDARY_BASE)],
                  priorities=(4, 4))
        if null_pf:
            core.hierarchy._pf = None
        start = time.perf_counter()
        core.step(cycles)
        return time.perf_counter() - start

    bare = default_off = float("inf")
    for _ in range(repeats):
        bare = min(bare, one(True))
        default_off = min(default_off, one(False))
    return bare, default_off


def test_bench_prefetch_cold_vs_warm_and_default_off_overhead(
        save_report):
    with tempfile.TemporaryDirectory() as tmp:
        cold_report, cold_wall, cold_stats = _run_prefetch(tmp)
        warm_report, warm_wall, warm_stats = _run_prefetch(tmp)
    save_report(cold_report)

    # Transparency: the warm sweep (twin contexts included) is pure
    # cache reads.
    assert repr(cold_report) == repr(warm_report)
    assert cold_stats["stores"] == cold_stats["misses"] > 0
    assert warm_stats["misses"] == 0

    bare, default_off = _step_walls()
    # The true overhead cannot be negative (the default-off path does
    # strictly more work); a negative estimate is residual timer noise,
    # so clamp the recorded stat at the estimator's physical floor and
    # keep the raw walls alongside it.
    overhead = max(0.0, (default_off - bare) / bare)

    claims = cold_report.data["claims"]
    speedup = cold_wall / warm_wall if warm_wall else None
    section = {
        "cold_wall_s": round(cold_wall, 2),
        "warm_wall_s": round(warm_wall, 2),
        "speedup_warm": round(speedup, 2) if speedup else None,
        "cells_cached": cold_stats["stores"],
        "bare_wall_s": round(bare, 4),
        "default_off_wall_s": round(default_off, 4),
        "default_off_overhead_frac": round(overhead, 4),
        "cotuning_margins": {
            e["pair"]: round(e["margin_frac"], 4)
            for e in claims["cotuning_margins"]},
        "governed_tail_ratio": round(claims["governed_tail_ratio"], 4),
        "reports_identical": True,
    }

    # Read-modify-write: only this bench owns the "prefetch" section.
    out = ROOT / "BENCH_simcore.json"
    try:
        payload = json.loads(out.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["prefetch"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert claims["baseline_prefetch_silent"]
    assert claims["cotuning_gains_some_pair"]
    assert claims["governed_reaches_best_static"]
    assert speedup is not None and speedup >= WARM_FLOOR, (
        f"warm prefetch run only {speedup:.2f}x faster than cold "
        f"({warm_wall:.2f}s vs {cold_wall:.2f}s), floor {WARM_FLOOR}")
    assert overhead <= OVERHEAD_CEIL, (
        f"default-off prefetcher adds {overhead:.2%} to a miss-heavy "
        f"run ({default_off:.3f}s vs {bare:.3f}s), "
        f"ceiling {OVERHEAD_CEIL:.0%}")
