"""Setup shim: this environment lacks the `wheel` package, so editable
installs go through the legacy setuptools path (`--no-use-pep517`)."""
from setuptools import setup

setup()
