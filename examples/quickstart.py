#!/usr/bin/env python
"""Quickstart: measure the effect of POWER5 software priorities.

Runs a cpu-bound micro-benchmark against a memory-bound one on the
simulated POWER5 core at several priority pairs and prints what the
paper's Figures 2-4 show: the cpu-bound thread's performance scales
with its decode-slot share, the memory-bound thread barely cares, and
total throughput is maximised by prioritizing the high-IPC thread.

Run:  python examples/quickstart.py
"""

from repro import POWER5, make_microbenchmark
from repro.fame import FameRunner
from repro.priority import decode_slot_ratio, slot_share

SECONDARY_BASE = (1 << 27) + 8192


def main() -> None:
    config = POWER5.small()
    runner = FameRunner(config, min_repetitions=3)

    primary, secondary = "cpu_int", "ldint_mem"
    print(f"PThread = {primary} (cpu-bound), "
          f"SThread = {secondary} (memory-bound)\n")

    header = (f"{'prios':>8} {'R':>4} {'P share':>8} "
              f"{'P IPC':>7} {'S IPC':>7} {'total':>7}")
    print(header)
    print("-" * len(header))
    for prios in [(4, 4), (5, 4), (6, 4), (6, 2), (2, 6), (1, 6)]:
        fame = runner.run_pair(
            make_microbenchmark(primary, config),
            make_microbenchmark(secondary, config,
                                base_address=SECONDARY_BASE),
            priorities=prios)
        ratio = decode_slot_ratio(*prios)
        share = slot_share(*prios)[0]
        print(f"{str(prios):>8} {ratio:>4} {share:>8.3f} "
              f"{fame.thread(0).ipc:>7.3f} {fame.thread(1).ipc:>7.4f} "
              f"{fame.total_ipc:>7.3f}")

    print("\nReading the table:")
    print(" - raising the cpu-bound thread's priority raises its IPC")
    print("   nearly in proportion to its decode-slot share;")
    print(" - the memory-bound thread's IPC is almost flat (it is")
    print("   latency-bound, not decode-bound);")
    print(" - total throughput peaks when the high-IPC thread is")
    print("   prioritized, and collapses when it is starved.")


if __name__ == "__main__":
    main()
