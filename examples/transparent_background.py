#!/usr/bin/env python
"""Transparent execution: run a background thread "for free".

Reproduces the scenario of paper section 5.5 (Figure 6): a foreground
application keeps (almost) its single-thread performance while a
background thread at priority 1 scavenges leftover decode slots.
This is POWER5's realisation of Dorai & Yeung's transparent threads.

The example also shows the limits of transparency: a high-IPC,
cache-resident foreground (ldint_l2) paired with a memory-bound
background loses performance not to decode competition but to cache
pollution, which priorities cannot prevent.

Run:  python examples/transparent_background.py
"""

from repro import POWER5, make_microbenchmark
from repro.fame import FameRunner

SECONDARY_BASE = (1 << 27) + 8192

FOREGROUNDS = ["cpu_int", "cpu_fp", "lng_chain_cpuint", "ldint_l1",
               "ldint_l2"]
BACKGROUND = "ldint_mem"  # the paper's worst-case background


def main() -> None:
    config = POWER5.small()
    runner = FameRunner(config, min_repetitions=3)

    print(f"background thread: {BACKGROUND} at priority 1\n")
    header = (f"{'foreground':>18} {'ST IPC':>8} {'fg IPC':>8} "
              f"{'fg time vs ST':>14} {'bg IPC':>8}")
    print(header)
    print("-" * len(header))
    for fg in FOREGROUNDS:
        st = runner.run_single(make_microbenchmark(fg, config))
        st_time = st.thread(0).avg_repetition_cycles
        fame = runner.run_pair(
            make_microbenchmark(fg, config),
            make_microbenchmark(BACKGROUND, config,
                                base_address=SECONDARY_BASE),
            priorities=(6, 1))
        rel = fame.thread(0).avg_repetition_cycles / st_time
        print(f"{fg:>18} {st.thread(0).ipc:>8.3f} "
              f"{fame.thread(0).ipc:>8.3f} {rel:>13.2f}x "
              f"{fame.thread(1).ipc:>8.4f}")

    print("\nLow-IPC foregrounds barely notice the background (the")
    print("paper reports <10%); decode-hungry and cache-resident")
    print("foregrounds pay more -- and what they pay for is cache")
    print("pollution, which the priority mechanism cannot control.")


if __name__ == "__main__":
    main()
