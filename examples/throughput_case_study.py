#!/usr/bin/env python
"""Throughput case study: h264ref + mcf (paper section 5.3.1).

A batch system running a high-IPC video encoder next to a
memory-bound network-simplex code wants maximum combined IPC.  The
paper shows that raising h264ref's priority buys +7.2% at difference
+2 and peaks at +23.7% -- at the cost of slowing mcf down.

This example sweeps the priority pairs, prints the trade-off and
locates the peak, using the calibrated synthetic models of the two
applications.

Run:  python examples/throughput_case_study.py
"""

from repro import POWER5
from repro.experiments import ExperimentContext, priority_pair

DIFFS = (0, 1, 2, 3, 4, 5)


def main() -> None:
    ctx = ExperimentContext(config=POWER5.small(), min_repetitions=3)

    print("case study: 464.h264ref + 429.mcf (synthetic models)\n")
    header = (f"{'diff':>5} {'prios':>7} {'h264ref':>9} {'mcf':>9} "
              f"{'total IPC':>10} {'vs (4,4)':>9}")
    print(header)
    print("-" * len(header))

    base_total = None
    best = None
    for diff in DIFFS:
        pm = ctx.pair("h264ref", "mcf", priority_pair(diff))
        if base_total is None:
            base_total = pm.total_ipc
        gain = pm.total_ipc / base_total - 1
        if best is None or pm.total_ipc > best[1]:
            best = (diff, pm.total_ipc, gain)
        print(f"{diff:>+5d} {str(pm.priorities):>7} "
              f"{pm.primary.ipc:>9.3f} {pm.secondary.ipc:>9.4f} "
              f"{pm.total_ipc:>10.3f} {gain * 100:>+8.1f}%")

    diff, _, gain = best
    print(f"\npeak throughput at difference +{diff}: "
          f"{gain * 100:+.1f}% over the default priorities")
    print("(the paper measures +23.7% on real hardware; the gain comes")
    print(" from the encoder exploiting decode slots mcf cannot use)")


if __name__ == "__main__":
    main()
