#!/usr/bin/env python
"""Why the paper needed a kernel patch (section 4.3).

The stock Linux 2.6.23 kernel resets both hardware threads to MEDIUM
priority on *every* kernel entry -- each timer tick wipes whatever a
user experiment configured.  The paper's patch removes the kernel's
internal priority uses, stops the resets, and exposes priorities 1-6
through /sys.

This example runs the same prioritized workload pair under both
kernels and shows that prioritization only has an effect under the
patched one; it then uses the /sys interface exactly as a user-space
experiment would.

Run:  python examples/kernel_patch_demo.py
"""

from repro import POWER5, SMTCore, make_microbenchmark
from repro.syskernel import PatchedKernel, StockLinuxKernel

SECONDARY_BASE = (1 << 27) + 8192
TIMER_PERIOD = 2_000   # cycles between timer interrupts (shortened)
RUN_CYCLES = 120_000


def run_under(kernel) -> tuple[float, float, int]:
    config = POWER5.small()
    core = SMTCore(config)
    core.load([make_microbenchmark("cpu_int", config),
               make_microbenchmark("cpu_int", config,
                                   base_address=SECONDARY_BASE)])
    kernel.install(core)
    core.set_priorities(6, 1)   # what the experimenter asked for
    core.step(RUN_CYCLES)
    t0 = core.thread(0).retired / RUN_CYCLES
    t1 = core.thread(1).retired / RUN_CYCLES
    return t0, t1, kernel.kernel_entries


def main() -> None:
    print("experiment: two copies of cpu_int, priorities set to (6,1)\n")
    for name, kernel in [("stock 2.6.23", StockLinuxKernel(TIMER_PERIOD)),
                         ("patched", PatchedKernel(TIMER_PERIOD))]:
        ipc0, ipc1, entries = run_under(kernel)
        ratio = ipc0 / ipc1 if ipc1 else float("inf")
        print(f"{name:>14} kernel: thread0 {ipc0:.3f} IPC, "
              f"thread1 {ipc1:.3f} IPC  (ratio {ratio:5.1f}x, "
              f"{entries} kernel entries)")

    print("\nUnder the stock kernel the (6,1) setting survives only")
    print("until the next timer tick, so both threads end up nearly")
    print("equal; under the patch the full 63/64 slot split persists.")

    # The /sys interface, as user space sees it.
    config = POWER5.small()
    core = SMTCore(config)
    core.load([make_microbenchmark("cpu_int", config),
               make_microbenchmark("cpu_int", config,
                                   base_address=SECONDARY_BASE)])
    kernel = PatchedKernel(TIMER_PERIOD)
    kernel.install(core)
    path = f"{PatchedKernel.SYSFS_DIR}/thread0"
    print(f"\n$ cat {path}")
    print(kernel.sysfs.read(path))
    print(f"$ echo 6 > {path}")
    kernel.sysfs.write(path, "6")
    print(f"$ cat {path}")
    print(kernel.sysfs.read(path))


if __name__ == "__main__":
    main()
