#!/usr/bin/env python
"""Execution-time case study: balancing an FFT -> LU pipeline.

Reproduces paper section 5.4 (Table 4).  A spectral-analysis code
pipelines a long FFT stage into a short LU stage on the two SMT
threads of one core.  At default priorities the LU thread finishes its
slice early and idles; prioritizing the FFT re-balances the pipeline
and beats both single-thread execution and the default priorities --
but over-prioritizing inverts the imbalance (the LU becomes the
bottleneck) and loses.

The stages are real algorithms: a radix-2 FFT and a Doolittle LU
decomposition, instrumented to emit their instruction streams.

Run:  python examples/pipeline_balancing.py
"""

from repro import POWER5
from repro.workloads import SoftwarePipeline


def main() -> None:
    config = POWER5.small()
    pipe = SoftwarePipeline(config=config)

    fft_st, lu_st = pipe.single_thread_times()
    st_iter = fft_st + lu_st
    print(f"single-thread: FFT {fft_st:,.0f} cyc, LU {lu_st:,.0f} cyc "
          f"-> iteration {st_iter:,.0f} cyc "
          f"({config.seconds(st_iter) * 1e6:.1f} us at "
          f"{config.clock_hz / 1e9:.2f} GHz)\n")

    header = (f"{'prios':>7} {'FFT':>9} {'LU busy':>9} "
              f"{'iteration':>10} {'vs ST':>7}")
    print(header)
    print("-" * len(header))
    best = None
    for prios in [(4, 4), (5, 4), (6, 4), (6, 3)]:
        run = pipe.run(priorities=prios, iterations=10)
        rel = run.iteration_cycles / st_iter
        marker = ""
        if best is None or run.iteration_cycles < best[1]:
            best = (prios, run.iteration_cycles)
        if run.consumer_rep_cycles > run.producer_rep_cycles:
            marker = "  <- LU became the bottleneck"
        print(f"{str(prios):>7} {run.producer_rep_cycles:>9,.0f} "
              f"{run.consumer_rep_cycles:>9,.0f} "
              f"{run.iteration_cycles:>10,.0f} {rel:>6.2f}x{marker}")

    prios, cycles = best
    print(f"\nbest: priorities {prios}, "
          f"{(1 - cycles / st_iter) * 100:.1f}% faster than "
          "single-thread mode")
    print("(the paper's best case is (6,4): 9.3% over the default")
    print(" priorities; its (6,3) row likewise inverts the imbalance)")


if __name__ == "__main__":
    main()
